// Resilience primitives: retry backoff, circuit breaker, fault injector
// and the transport's connect behaviour under injected faults.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/fault_injector.hpp"
#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/resilience.hpp"

namespace cachecloud::node {
namespace {

using net::FaultInjector;
using net::FaultProfile;

// ---- RetryPolicy ----------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryConfig config;
  config.backoff_base_sec = 0.010;
  config.backoff_cap_sec = 0.040;
  config.jitter = 0.5;
  RetryPolicy policy(config, /*seed=*/7);

  // Wait N is base * 2^(N-1) capped, scaled by U[1-jitter, 1].
  const std::vector<double> ceilings = {0.010, 0.020, 0.040, 0.040, 0.040};
  for (std::size_t retry = 1; retry <= ceilings.size(); ++retry) {
    const double wait = policy.backoff_sec(static_cast<std::uint32_t>(retry));
    EXPECT_LE(wait, ceilings[retry - 1]) << "retry " << retry;
    EXPECT_GE(wait, ceilings[retry - 1] * (1.0 - config.jitter))
        << "retry " << retry;
  }
}

TEST(RetryPolicyTest, ZeroJitterIsExact) {
  RetryConfig config;
  config.backoff_base_sec = 0.004;
  config.backoff_cap_sec = 1.0;
  config.jitter = 0.0;
  RetryPolicy policy(config, /*seed=*/1);
  EXPECT_DOUBLE_EQ(policy.backoff_sec(1), 0.004);
  EXPECT_DOUBLE_EQ(policy.backoff_sec(2), 0.008);
  EXPECT_DOUBLE_EQ(policy.backoff_sec(3), 0.016);
}

TEST(RetryPolicyTest, SameSeedSameSequence) {
  RetryConfig config;
  RetryPolicy a(config, 42);
  RetryPolicy b(config, 42);
  for (std::uint32_t retry = 1; retry <= 8; ++retry) {
    EXPECT_DOUBLE_EQ(a.backoff_sec(retry), b.backoff_sec(retry));
  }
}

// ---- CircuitBreaker -------------------------------------------------

BreakerConfig fast_breaker() {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_sec = 1.0;
  config.half_open_successes = 1;
  return config;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(fast_breaker());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  breaker.on_failure(0.0);
  breaker.on_failure(0.1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(0.2));
  breaker.on_failure(0.2);  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow(0.3));
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(fast_breaker());
  breaker.on_failure(0.0);
  breaker.on_failure(0.1);
  breaker.on_success(0.2);
  breaker.on_failure(0.3);
  breaker.on_failure(0.4);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, CooldownAdmitsSingleProbeThatCloses) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 3; ++i) breaker.on_failure(0.1 * i);
  EXPECT_FALSE(breaker.allow(0.5));  // cooling down

  EXPECT_TRUE(breaker.allow(1.5));  // cooldown elapsed: half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_FALSE(breaker.allow(1.6));  // only one probe in flight

  breaker.on_success(1.7);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow(1.8));
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 3; ++i) breaker.on_failure(0.1 * i);
  EXPECT_TRUE(breaker.allow(1.5));
  breaker.on_failure(1.6);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(1.7));   // fresh cooldown from the re-open
  EXPECT_TRUE(breaker.allow(2.7));    // ...which eventually elapses too
}

TEST(CircuitBreakerTest, GaugeEncoding) {
  EXPECT_DOUBLE_EQ(breaker_state_value(CircuitBreaker::State::Closed), 0.0);
  EXPECT_DOUBLE_EQ(breaker_state_value(CircuitBreaker::State::Open), 1.0);
  EXPECT_DOUBLE_EQ(breaker_state_value(CircuitBreaker::State::HalfOpen), 2.0);
}

// ---- FaultInjector --------------------------------------------------

TEST(FaultInjectorTest, CertainFaultsFireAndAreCounted) {
  FaultInjector faults(/*seed=*/1);
  FaultProfile drop_all;
  drop_all.frame_drop = 1.0;
  faults.set_profile(9001, drop_all);

  EXPECT_EQ(faults.on_frame(9001), FaultInjector::Action::Drop);
  EXPECT_EQ(faults.on_frame(9002), FaultInjector::Action::Deliver);
  EXPECT_EQ(faults.count(FaultInjector::Kind::FrameDrop), 1u);
  EXPECT_EQ(faults.disruptions(), 1u);

  FaultProfile refuse_all;
  refuse_all.connect_refused = 1.0;
  faults.set_default_profile(refuse_all);
  EXPECT_THROW(faults.on_connect(9002), net::NetError);
  EXPECT_EQ(faults.count(FaultInjector::Kind::ConnectRefused), 1u);
  EXPECT_EQ(faults.disruptions(), 2u);

  faults.clear_all();
  EXPECT_NO_THROW(faults.on_connect(9002));
  EXPECT_EQ(faults.on_frame(9001), FaultInjector::Action::Deliver);
  EXPECT_EQ(faults.disruptions(), 2u);  // counters persist across clear_all
}

TEST(FaultInjectorTest, SameSeedSameVerdictSequence) {
  FaultProfile flaky;
  flaky.frame_drop = 0.3;
  flaky.reset = 0.1;
  FaultInjector a(/*seed=*/99);
  FaultInjector b(/*seed=*/99);
  a.set_default_profile(flaky);
  b.set_default_profile(flaky);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.on_frame(1234), b.on_frame(1234)) << "frame " << i;
  }
  EXPECT_EQ(a.disruptions(), b.disruptions());
  EXPECT_GT(a.disruptions(), 0u);
}

// ---- transport under injection --------------------------------------

TEST(TransportFaultTest, InjectedConnectRefusalThrowsWithoutTouchingWire) {
  FaultInjector faults(/*seed=*/5);
  FaultProfile refuse_all;
  refuse_all.connect_refused = 1.0;
  faults.set_default_profile(refuse_all);
  // No listener on the port either way — with the injector the refusal is
  // deterministic and counted.
  EXPECT_THROW((void)net::connect_local(1, 0.5, &faults), net::NetError);
  EXPECT_EQ(faults.count(FaultInjector::Kind::ConnectRefused), 1u);
}

TEST(TransportFaultTest, ConnectFailureIsFastNotKernelDefault) {
  // A closed loopback port must fail well inside the configured timeout
  // (non-blocking connect + poll), not hang for the kernel default.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)net::connect_local(1, 1.0), net::NetError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 2.0);
}

TEST(TransportFaultTest, InjectedDropFailsCallAndClientRecovers) {
  net::EventServer server(0, [](const net::Frame& f) { return f; });
  FaultInjector faults(/*seed=*/11);
  net::MuxClient client(server.port(), 2.0, nullptr, &faults);

  net::Frame ping;
  ping.type = 1;
  ping.payload = {1, 2, 3};
  const net::Frame echo = client.call(ping);
  EXPECT_EQ(echo.payload, ping.payload);

  FaultProfile drop_all;
  drop_all.frame_drop = 1.0;
  faults.set_profile(server.port(), drop_all);
  EXPECT_THROW((void)client.call(ping), net::NetError);

  faults.clear_all();
  const net::Frame again = client.call(ping);
  EXPECT_EQ(again.payload, ping.payload);
  server.stop();
}

}  // namespace
}  // namespace cachecloud::node
