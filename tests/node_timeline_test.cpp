// End-to-end timeline tests: per-node background samplers scraped over
// TCP (TimelineDumpReq), flight-recorder triggers on live nodes (manual
// via the wire, breaker trip on a crashed peer), partial scrapes with a
// dead node, and the wire codec's NaN round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "node/protocol.hpp"
#include "node/timeline_scrape.hpp"
#include "obs/timeline.hpp"

namespace cachecloud::node {
namespace {

NodeConfig timed_config() {
  NodeConfig config;
  config.num_caches = 3;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = "adhoc";
  config.timeline.enabled = true;
  config.timeline.interval_sec = 0.02;  // fast ticks so tests don't wait
  return config;
}

std::vector<std::uint16_t> all_ports(Cluster& cluster) {
  std::vector<std::uint16_t> ports;
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    ports.push_back(cluster.cache(id).port());
  }
  ports.push_back(cluster.origin().port());
  return ports;
}

// Polls until `predicate` holds or ~5s pass — sampler threads tick on
// their own schedule, so tests wait for state instead of sleeping blind.
template <typename Predicate>
bool wait_for(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(NodeTimelineTest, SamplersProduceScrapableWindows) {
  Cluster cluster(timed_config());
  cluster.origin().add_document("/a", 256);
  for (int i = 0; i < 5; ++i) (void)cluster.cache(0).get("/a");

  const std::vector<std::uint16_t> ports = all_ports(cluster);
  ASSERT_TRUE(wait_for([&] {
    const TimelineScrapeResult scrape = scrape_timelines(ports);
    if (scrape.nodes_scraped != ports.size()) return false;
    for (const NodeTimeline& node : scrape.nodes) {
      if (!node.enabled || node.window.ticks() < 2) return false;
    }
    return true;
  }));

  const TimelineScrapeResult scrape = scrape_timelines(ports);
  EXPECT_TRUE(scrape.errors.empty());
  // Cache nodes expose per-class get rates; all of them carry the uptime
  // gauge and build info from satellite registration.
  const NodeTimeline& cache0 = scrape.nodes[0];
  EXPECT_EQ(cache0.node, "cache-0");
  EXPECT_NE(cache0.window.find("cachecloud_gets_total",
                               {{"class", "local"}}),
            nullptr);
  EXPECT_NE(cache0.window.find("cachecloud_start_time_seconds"), nullptr);
  const NodeTimeline& origin = scrape.nodes.back();
  EXPECT_EQ(origin.node, "origin");
  EXPECT_NE(origin.window.find("cachecloud_start_time_seconds"), nullptr);
  // The get counters actually moved: summed across classes, the last
  // cumulative value folded through rates must be visible in some tick.
  const obs::SeriesSnapshot* local = cache0.window.find(
      "cachecloud_gets_total", {{"class", "local"}});
  ASSERT_NE(local, nullptr);
  bool any_finite = false;
  for (double v : local->values) {
    if (std::isfinite(v)) any_finite = true;
  }
  EXPECT_TRUE(any_finite);
}

TEST(NodeTimelineTest, WireTriggerProducesManualFlightDump) {
  Cluster cluster(timed_config());
  const std::uint16_t port = cluster.cache(1).port();

  TimelineDumpReq req;
  req.include_flight = true;
  req.trigger = true;
  net::MuxClient client(port);
  const net::Frame reply = client.call(req.encode());
  ASSERT_EQ(reply.type,
            static_cast<std::uint16_t>(MsgType::TimelineDumpResp));
  const TimelineDumpResp resp = TimelineDumpResp::decode(reply);
  EXPECT_EQ(resp.node, "cache-1");
  EXPECT_TRUE(resp.enabled);
  ASSERT_EQ(resp.flights.size(), 1u);
  EXPECT_EQ(resp.flights[0].reason, "manual");
  EXPECT_EQ(resp.flights[0].node, "cache-1");
}

TEST(NodeTimelineTest, UntimedNodeAnswersScrapeAsDisabled) {
  NodeConfig config = timed_config();
  config.timeline.enabled = false;
  Cluster cluster(config);
  const TimelineScrapeResult scrape =
      scrape_timelines({cluster.cache(0).port()});
  ASSERT_EQ(scrape.nodes_scraped, 1u);
  EXPECT_FALSE(scrape.nodes[0].enabled);
  EXPECT_EQ(scrape.nodes[0].window.ticks(), 0u);
  EXPECT_EQ(scrape.nodes[0].node, "cache-0");
}

TEST(NodeTimelineTest, BreakerTripTriggersFlightDumpWithSpans) {
  NodeConfig config = timed_config();
  config.auto_failover = false;  // keep the crashed node in the ring
  config.breaker.failure_threshold = 2;
  config.retry.backoff_base_sec = 0.001;
  config.retry.backoff_cap_sec = 0.002;
  config.trace.collect = true;
  config.trace.sample_probability = 1.0;
  Cluster cluster(config);
  for (int i = 0; i < 20; ++i) {
    cluster.origin().add_document("/d" + std::to_string(i), 128);
  }
  // Warm the directory so node 0 knows which documents live on node 1.
  for (int i = 0; i < 20; ++i) {
    (void)cluster.cache(1).get("/d" + std::to_string(i));
  }
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    cluster.cache(id).sync_replicas();
  }

  cluster.crash(1);
  // Enough lookups that node 0 retries the dead peer past the breaker
  // threshold; each degrades to an origin fetch, so the gets succeed.
  for (int i = 0; i < 20; ++i) {
    (void)cluster.cache(0).get("/d" + std::to_string(i));
  }

  const TimelineScrapeResult scrape = scrape_timelines(
      {cluster.cache(0).port()}, /*include_flight=*/true);
  ASSERT_EQ(scrape.nodes_scraped, 1u);
  const std::vector<obs::FlightDump>& flights = scrape.nodes[0].flights;
  ASSERT_FALSE(flights.empty());
  const obs::FlightDump& dump = flights.front();
  EXPECT_EQ(dump.reason, "breaker_trip");
  EXPECT_NE(dump.detail.find("peer 1"), std::string::npos);
  // Tracing was on, so the dump carries the span tail leading up to the
  // trip — the post-mortem shows what the node was doing.
  EXPECT_FALSE(dump.spans.empty());
}

TEST(NodeTimelineTest, ScrapesTolerateDeadNode) {
  Cluster cluster(timed_config());
  cluster.origin().add_document("/a", 256);
  (void)cluster.cache(0).get("/a");
  const std::vector<std::uint16_t> ports = all_ports(cluster);
  cluster.crash(1);

  const TimelineScrapeResult timelines = scrape_timelines(ports);
  ASSERT_EQ(timelines.nodes.size(), ports.size());
  EXPECT_EQ(timelines.nodes_scraped, ports.size() - 1);
  EXPECT_TRUE(timelines.nodes[1].unreachable);
  EXPECT_FALSE(timelines.nodes[1].error.empty());
  EXPECT_FALSE(timelines.nodes[0].unreachable);
  EXPECT_FALSE(timelines.nodes.back().unreachable);
  ASSERT_EQ(timelines.errors.size(), 1u);

  const std::vector<NodeStatsScrape> stats = scrape_stats(ports);
  ASSERT_EQ(stats.size(), ports.size());
  EXPECT_TRUE(stats[1].unreachable);
  EXPECT_TRUE(stats[1].snapshot.samples.empty());
  EXPECT_FALSE(stats[0].unreachable);
  EXPECT_FALSE(stats[0].snapshot.samples.empty());
}

TEST(NodeTimelineTest, WireCodecRoundTripsWindowsAndNaN) {
  TimelineDumpResp resp;
  resp.node = "cache-2";
  resp.enabled = true;
  resp.window.interval_sec = 0.5;
  resp.window.t_sec = {1.0, 1.5};
  obs::SeriesSnapshot series;
  series.name = "cachecloud_gets_total";
  series.labels = {{"class", "local"}};
  series.kind = obs::SeriesKind::Rate;
  series.values = {std::nan(""), 42.0};
  resp.window.series.push_back(series);
  obs::FlightDump flight;
  flight.node = "cache-2";
  flight.reason = "disk_degrade";
  flight.detail = "because";
  flight.t_sec = 3.25;
  flight.seq = 7;
  obs::SpanRecord span;
  span.trace_id = 9;
  span.span_id = 10;
  span.node = "cache-2";
  span.name = "get";
  span.start_us = 100;
  span.end_us = 200;
  span.error = true;
  span.tags = {{"doc", "/a"}};
  flight.spans.push_back(span);
  flight.log_tail = {"line one", "line two"};
  resp.flights.push_back(flight);

  const TimelineDumpResp decoded =
      TimelineDumpResp::decode(resp.encode());
  EXPECT_EQ(decoded.node, "cache-2");
  EXPECT_TRUE(decoded.enabled);
  ASSERT_EQ(decoded.window.series.size(), 1u);
  const obs::SeriesSnapshot& got = decoded.window.series[0];
  EXPECT_EQ(got.labels, series.labels);
  EXPECT_EQ(got.kind, obs::SeriesKind::Rate);
  ASSERT_EQ(got.values.size(), 2u);
  EXPECT_TRUE(std::isnan(got.values[0]));  // NaN rides f64 unchanged
  EXPECT_DOUBLE_EQ(got.values[1], 42.0);
  ASSERT_EQ(decoded.flights.size(), 1u);
  const obs::FlightDump& dump = decoded.flights[0];
  EXPECT_EQ(dump.reason, "disk_degrade");
  EXPECT_EQ(dump.seq, 7u);
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].tags, span.tags);
  EXPECT_TRUE(dump.spans[0].error);
  EXPECT_EQ(dump.log_tail,
            (std::vector<std::string>{"line one", "line two"}));
}

}  // namespace
}  // namespace cachecloud::node
