#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace cachecloud::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

PlacementContext base_context() {
  PlacementContext ctx;
  ctx.cache = 0;
  ctx.doc = 1;
  ctx.now = 100.0;
  ctx.access_rate = 1.0;
  ctx.update_rate = 0.1;
  ctx.mean_access_rate_at_cache = 0.5;
  ctx.cloud_copies = 1;
  ctx.residence_sec = 1000.0;
  return ctx;
}

UtilityConfig equal_weights(bool with_disk) {
  UtilityConfig config;
  const double w = with_disk ? 0.25 : 1.0 / 3.0;
  config.w_consistency = w;
  config.w_access_frequency = w;
  config.w_availability = w;
  config.w_disk_contention = with_disk ? w : 0.0;
  return config;
}

TEST(UtilityComponentsTest, ConsistencyDecaysWithUpdateRate) {
  PlacementContext ctx = base_context();
  const UtilityConfig config = equal_weights(false);
  ctx.update_rate = 0.0;
  const double no_updates = compute_utility(ctx, config).cmc;
  ctx.update_rate = 1.0;
  const double equal_rates = compute_utility(ctx, config).cmc;
  ctx.update_rate = 100.0;
  const double hot_updates = compute_utility(ctx, config).cmc;
  EXPECT_DOUBLE_EQ(no_updates, 1.0);
  EXPECT_DOUBLE_EQ(equal_rates, 0.5);
  EXPECT_LT(hot_updates, 0.05);
  EXPECT_GT(no_updates, equal_rates);
  EXPECT_GT(equal_rates, hot_updates);
}

TEST(UtilityComponentsTest, AccessFrequencyRelativeToCache) {
  PlacementContext ctx = base_context();
  const UtilityConfig config = equal_weights(false);
  ctx.access_rate = 2.0;
  ctx.mean_access_rate_at_cache = 1.0;
  EXPECT_NEAR(compute_utility(ctx, config).afc, 2.0 / 3.0, 1e-12);
  // No evidence at all -> neutral 0.5.
  ctx.access_rate = 0.0;
  ctx.mean_access_rate_at_cache = 0.0;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).afc, 0.5);
}

TEST(UtilityComponentsTest, AvailabilityDecaysWithCopies) {
  PlacementContext ctx = base_context();
  const UtilityConfig config = equal_weights(false);
  ctx.cloud_copies = 0;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dac, 1.0);
  ctx.cloud_copies = 1;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dac, 0.5);
  ctx.cloud_copies = 9;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dac, 0.1);
}

TEST(UtilityComponentsTest, DiskContentionComparesResidenceToReaccess) {
  PlacementContext ctx = base_context();
  const UtilityConfig config = equal_weights(true);
  // Unlimited disk: no contention whatsoever.
  ctx.residence_sec = kInf;
  ctx.access_rate = 0.01;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dscc, 1.0);
  // A copy never accessed again is pure churn.
  ctx.residence_sec = 1000.0;
  ctx.access_rate = 0.0;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dscc, 0.0);
  // Residence 1000 s, re-access every 1000 s: break-even.
  ctx.access_rate = 1.0 / 1000.0;
  EXPECT_DOUBLE_EQ(compute_utility(ctx, config).dscc, 0.5);
  // Hot document on the same disk: clearly worth keeping.
  ctx.access_rate = 1.0;
  EXPECT_NEAR(compute_utility(ctx, config).dscc, 1000.0 / 1001.0, 1e-12);
  // Cold document on a fast-churning disk: not worth it.
  ctx.residence_sec = 10.0;
  ctx.access_rate = 0.001;
  EXPECT_NEAR(compute_utility(ctx, config).dscc, 10.0 / 1010.0, 1e-12);
}

TEST(UtilityComponentsTest, WeightedSumAndNormalization) {
  PlacementContext ctx = base_context();
  UtilityConfig config;
  config.w_consistency = 2.0;  // weights need not sum to 1; normalized inside
  config.w_access_frequency = 0.0;
  config.w_availability = 0.0;
  config.w_disk_contention = 0.0;
  const UtilityBreakdown u = compute_utility(ctx, config);
  EXPECT_DOUBLE_EQ(u.utility, u.cmc);
}

TEST(UtilityComponentsTest, RejectsAllZeroWeights) {
  UtilityConfig config;
  config.w_consistency = config.w_access_frequency = config.w_availability =
      config.w_disk_contention = 0.0;
  EXPECT_THROW((void)compute_utility(base_context(), config),
               std::invalid_argument);
  EXPECT_THROW(UtilityPlacement{config}, std::invalid_argument);
}

TEST(UtilityPlacementTest, ThresholdGatesStorage) {
  UtilityConfig config = equal_weights(false);
  config.threshold = 0.5;
  UtilityPlacement placement(config);

  PlacementContext good = base_context();
  good.update_rate = 0.0;
  good.cloud_copies = 0;
  EXPECT_TRUE(placement.store_at_requester(good));

  PlacementContext bad = base_context();
  bad.access_rate = 0.01;
  bad.update_rate = 10.0;
  bad.mean_access_rate_at_cache = 5.0;
  bad.cloud_copies = 8;
  EXPECT_FALSE(placement.store_at_requester(bad));
}

TEST(UtilityPlacementTest, RejectsBadThreshold) {
  UtilityConfig config = equal_weights(false);
  config.threshold = 1.5;
  EXPECT_THROW(UtilityPlacement{config}, std::invalid_argument);
}

TEST(PlacementFactoryTest, NamesAndBehaviours) {
  const auto adhoc = make_placement("adhoc");
  const auto beacon = make_placement("beacon");
  const auto utility = make_placement("utility");
  EXPECT_EQ(adhoc->name(), "adhoc");
  EXPECT_EQ(beacon->name(), "beacon");
  EXPECT_EQ(utility->name(), "utility");
  EXPECT_THROW(make_placement("nope"), std::invalid_argument);

  PlacementContext ctx = base_context();
  ctx.is_beacon = false;
  EXPECT_TRUE(adhoc->store_at_requester(ctx));
  EXPECT_FALSE(beacon->store_at_requester(ctx));
  ctx.is_beacon = true;
  EXPECT_TRUE(beacon->store_at_requester(ctx));

  EXPECT_FALSE(adhoc->replicate_to_beacon_on_group_miss());
  EXPECT_TRUE(beacon->replicate_to_beacon_on_group_miss());
  EXPECT_FALSE(utility->replicate_to_beacon_on_group_miss());
}

// Monotonicity sweep: utility is non-increasing in update rate and copies,
// non-decreasing in access rate.
class UtilityMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(UtilityMonotonicity, InUpdateRate) {
  const double access = GetParam();
  const UtilityConfig config = equal_weights(false);
  double prev = 1.1;
  for (double update = 0.0; update <= 10.0; update += 0.5) {
    PlacementContext ctx = base_context();
    ctx.access_rate = access;
    ctx.update_rate = update;
    const double u = compute_utility(ctx, config).utility;
    EXPECT_LE(u, prev + 1e-12) << "access=" << access << " update=" << update;
    prev = u;
  }
}

TEST_P(UtilityMonotonicity, InAccessRate) {
  const double update = GetParam();
  const UtilityConfig config = equal_weights(false);
  double prev = -0.1;
  for (double access = 0.0; access <= 10.0; access += 0.5) {
    PlacementContext ctx = base_context();
    ctx.access_rate = access;
    ctx.update_rate = update;
    if (access == 0.0 && update == 0.0) continue;  // neutral special case
    const double u = compute_utility(ctx, config).utility;
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, UtilityMonotonicity,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0));

}  // namespace
}  // namespace cachecloud::core
