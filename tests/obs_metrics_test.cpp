#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace cachecloud::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(CounterTest, ConcurrentIncrementsLandExactly) {
  Registry registry;
  Counter& counter = registry.counter("test_total", "concurrent counter");
  Gauge& gauge = registry.gauge("test_gauge", "concurrent gauge");
  LatencyHistogram& histogram = registry.histogram(
      "test_seconds", "concurrent histogram", {0.001, 0.01, 0.1, 1.0});

  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.inc();
        gauge.add(1.0);
        histogram.observe(0.001 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Sum of t*kIters*0.001*(t+1) over all threads.
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += 0.001 * static_cast<double>(t + 1) * kIters;
  }
  EXPECT_NEAR(histogram.sum(), expected_sum, expected_sum * 1e-9);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : histogram.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(RegistryTest, GetOrCreateReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("x_total", "help", {{"k", "v"}});
  Counter& b = registry.counter("x_total", "other help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& c = registry.counter("x_total", "help", {{"k", "w"}});
  EXPECT_NE(&a, &c);
  // Same name with a different kind is a registration bug.
  EXPECT_THROW(registry.gauge("x_total", "help", {{"k", "v"}}),
               std::invalid_argument);
}

// --------------------------------------------------------------- histogram

TEST(HistogramTest, QuantilesAreMonotoneAndClamped) {
  LatencyHistogram histogram({0.001, 0.01, 0.1, 1.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);  // empty

  for (int i = 0; i < 100; ++i) {
    histogram.observe(0.0005);  // first bucket
    histogram.observe(0.05);    // third bucket
  }
  histogram.observe(50.0);  // +Inf bucket

  double prev = -1.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = histogram.quantile(q);
    EXPECT_GE(value, prev) << "quantile(" << q << ") not monotone";
    prev = value;
  }
  // +Inf observations clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 1.0);
  // Half the mass is in the first bucket.
  EXPECT_LE(histogram.quantile(0.25), 0.001);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(LatencyHistogram({}), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram({0.1, 0.1}), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram({0.2, 0.1}), std::invalid_argument);
}

// -------------------------------------------------------------- exposition

TEST(ExpositionTest, PrometheusTextRoundTrip) {
  Registry registry;
  registry.counter("cc_requests_total", "Requests", {{"class", "local"}})
      .inc(3);
  registry.counter("cc_requests_total", "Requests", {{"class", "cloud"}})
      .inc(2);
  registry.gauge("cc_docs", "Cached documents").set(17.0);
  LatencyHistogram& h =
      registry.histogram("cc_latency_seconds", "Latency", {0.01, 0.1});
  h.observe(0.005);
  h.observe(0.05);
  h.observe(5.0);

  const std::string text = registry.prometheus_text();
  // HELP/TYPE headers, one per family.
  EXPECT_NE(text.find("# HELP cc_requests_total Requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cc_docs gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cc_latency_seconds histogram"),
            std::string::npos);
  // Labelled samples.
  EXPECT_NE(text.find("cc_requests_total{class=\"local\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cc_requests_total{class=\"cloud\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cc_docs 17"), std::string::npos);
  // Cumulative buckets with the +Inf terminator, _sum and _count.
  EXPECT_NE(text.find("cc_latency_seconds_bucket{le=\"0.01\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cc_latency_seconds_bucket{le=\"0.1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cc_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cc_latency_seconds_count 3"), std::string::npos);

  // The snapshot carries the same numbers the text was rendered from.
  const Snapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.sum_of("cc_requests_total"), 5.0);
  const HistogramSnapshot* hs = snap.find_histogram("cc_latency_seconds");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 3u);
  EXPECT_EQ(to_prometheus(snap), text);
}

TEST(ExpositionTest, HelpTextAndLabelValuesEscapePerSpec) {
  Registry registry;
  // HELP escaping: backslash and newline only; double quotes stay
  // literal (the HELP line is not a quoted string, unlike label values).
  registry
      .counter("esc_total", "line one\nline two with \\ and \"quotes\"",
               {{"path", "a\\b"}, {"msg", "say \"hi\"\nbye"}})
      .inc();
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# HELP esc_total line one\\nline two with \\\\ "
                      "and \"quotes\""),
            std::string::npos);
  // Label values escape backslash, quote and newline.
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("msg=\"say \\\"hi\\\"\\nbye\""), std::string::npos);
  // No raw newline may survive inside any line: every '\n' in the output
  // must terminate a well-formed line starting with '#' or the name.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // output ends with a newline
    const std::string line = text.substr(start, end - start);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 || line.rfind("esc_total", 0) == 0)
        << "corrupt exposition line: " << line;
    start = end + 1;
  }
}

TEST(ExpositionTest, JsonDumpContainsEveryMetric) {
  Registry registry;
  registry.counter("a_total", "A", {{"k", "v"}}).inc(4);
  registry.gauge("b", "B").set(2.5);
  registry.histogram("c_seconds", "C", {0.1}).observe(0.05);

  const std::string json = registry.json();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ------------------------------------------------------------- percentiles

TEST(LatencyHistogramTest, LogSpacedBoundsShape) {
  const std::vector<double> bounds = log_spaced_bounds(1e-5, 10.0, 5);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-5);
  EXPECT_GE(bounds.back(), 10.0);
  const double step = std::pow(10.0, 1.0 / 5.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_NEAR(bounds[i] / bounds[i - 1], step, 1e-9);
  }
  EXPECT_THROW(log_spaced_bounds(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(1e-3, 1.0, 0), std::invalid_argument);
}

TEST(LatencyHistogramTest, InterpolatedPercentilesTrackUniformData) {
  // 1ms .. 1s uniform: percentile(p) should land near p/100 * 1s, within
  // one log bucket of resolution (10 buckets per decade ≈ 26% width).
  LatencyHistogram hist(log_spaced_bounds(1e-4, 10.0, 10));
  for (int i = 1; i <= 1000; ++i) hist.observe(static_cast<double>(i) * 1e-3);
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double expected = p / 100.0;
    EXPECT_NEAR(hist.percentile(p), expected, 0.3 * expected)
        << "p" << p;
  }
  EXPECT_LT(hist.percentile(50.0), hist.percentile(99.0));
  EXPECT_LT(hist.percentile(99.0), hist.percentile(99.9));
}

TEST(LatencyHistogramTest, BatchQuantilesMatchIndividualQueries) {
  LatencyHistogram hist(default_latency_bounds());
  for (int i = 0; i < 500; ++i) {
    hist.observe(1e-4 * static_cast<double>(1 + i % 97));
  }
  const std::vector<double> qs = {0.0, 0.5, 0.9, 0.99, 0.999, 1.0};
  const std::vector<double> batch = hist.quantiles(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], hist.quantile(qs[i]));
    if (i > 0) {
      EXPECT_GE(batch[i], batch[i - 1]);  // monotone in q
    }
  }
  // Snapshot percentiles agree with the live histogram.
  Registry registry;
  LatencyHistogram& reg_hist =
      registry.histogram("x_seconds", "x", default_latency_bounds());
  reg_hist.observe(0.003);
  reg_hist.observe(0.004);
  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* h = snap.find_histogram("x_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->percentile(99.9), reg_hist.percentile(99.9));
}

// -------------------------------------------------------------- exemplars

TEST(ExemplarTest, WorstObservationPerBucketWinsAndSnapshots) {
  LatencyHistogram hist({0.01, 0.1});
  hist.observe(0.005, 71);
  hist.observe(0.002, 72);  // smaller than 0.005: bucket keeps trace 71
  hist.observe(0.008, 73);  // new per-bucket maximum: replaces it
  hist.observe(0.05, 80);
  hist.observe(5.0, 90);    // lands in the implicit +Inf bucket
  hist.observe(0.06);       // exemplar-less observe never clobbers
  hist.observe(9.0, 0);     // trace id 0 means "no exemplar"

  const std::vector<Exemplar> exemplars = hist.exemplar_snapshot();
  ASSERT_EQ(exemplars.size(), 3u);  // bounds + the +Inf bucket
  EXPECT_EQ(exemplars[0].trace_id, 73u);
  EXPECT_DOUBLE_EQ(exemplars[0].value, 0.008);
  EXPECT_EQ(exemplars[1].trace_id, 80u);
  EXPECT_EQ(exemplars[2].trace_id, 90u);
  EXPECT_DOUBLE_EQ(exemplars[2].value, 5.0);
}

TEST(ExemplarTest, SnapshotLookupFindsTheTailTrace) {
  Registry registry;
  LatencyHistogram& hist =
      registry.histogram("lat_seconds", "latency", {0.01, 0.1});
  hist.observe(0.005, 71);
  hist.observe(5.0, 90);

  const Snapshot snap = registry.snapshot();
  const HistogramSnapshot* h = snap.find_histogram("lat_seconds");
  ASSERT_NE(h, nullptr);
  // A tail estimate above every bound resolves to the +Inf exemplar; a
  // low value resolves to the first bucket that has one.
  EXPECT_EQ(h->exemplar_at_or_above(1.0).trace_id, 90u);
  EXPECT_EQ(h->exemplar_at_or_above(0.0).trace_id, 71u);
  // The middle bucket is empty, so lookups there skip up to +Inf.
  EXPECT_EQ(h->exemplar_at_or_above(0.05).trace_id, 90u);
}

TEST(ExemplarTest, ExpositionCarriesTraceIds) {
  Registry registry;
  registry.histogram("lat_seconds", "latency", {0.01}).observe(0.005, 0xab);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# {trace_id=\"00000000000000ab\"} 0.005"),
            std::string::npos);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"trace_id\":\"00000000000000ab\""),
            std::string::npos);

  // Histograms without exemplars keep the legacy exposition: no
  // trace_id markers anywhere.
  Registry plain;
  plain.histogram("lat_seconds", "latency", {0.01}).observe(0.005);
  EXPECT_EQ(plain.prometheus_text().find("trace_id"), std::string::npos);
  EXPECT_EQ(plain.json().find("exemplars"), std::string::npos);
}

// ------------------------------------------------------------------ spans

TEST(SpanTest, TraceIdsAreUniqueAndNonZero) {
  std::uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = next_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, prev);
    prev = id;
  }
}

}  // namespace
}  // namespace cachecloud::obs
