// End-to-end profiler tests: a live cluster under traffic, scraped over
// TCP via ProfileDumpReq, must attribute lock contention and IO to the
// right nodes — and report cleanly when profiling was never enabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "node/cluster.hpp"
#include "node/profile_scrape.hpp"
#include "obs/profile.hpp"

namespace cachecloud::node {
namespace {

class ProfilingGuard {
 public:
  explicit ProfilingGuard(bool on) { obs::set_profiling_enabled(on); }
  ~ProfilingGuard() { obs::set_profiling_enabled(false); }
};

NodeConfig small_config() {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = "adhoc";
  return config;
}

// Every cache port plus the origin: the same set loadgen --profile scrapes.
std::vector<std::uint16_t> all_ports(Cluster& cluster) {
  std::vector<std::uint16_t> ports;
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    ports.push_back(cluster.cache(id).port());
  }
  ports.push_back(cluster.origin().port());
  return ports;
}

void drive_traffic(Cluster& cluster) {
  const std::vector<std::string> urls = {"/a", "/b", "/c", "/d", "/e"};
  for (const std::string& url : urls) {
    cluster.origin().add_document(url, 256);
  }
  // Two rounds from every node: misses, cloud fetches, then local hits —
  // every class of request crosses the profiled node mutexes.
  for (int round = 0; round < 2; ++round) {
    for (NodeId id = 0; id < cluster.num_caches(); ++id) {
      for (const std::string& url : urls) {
        (void)cluster.cache(id).get(url);
      }
    }
  }
}

TEST(NodeProfileTest, ScrapeAttributesStateMutexPerNode) {
  const ProfilingGuard guard(true);
  Cluster cluster(small_config());
  drive_traffic(cluster);

  const ProfileScrapeResult scrape = scrape_profiles(all_ports(cluster));
  EXPECT_TRUE(scrape.errors.empty())
      << (scrape.errors.empty() ? "" : scrape.errors.front());
  ASSERT_EQ(scrape.nodes_scraped, cluster.num_caches() + 1u);

  std::set<std::string> node_labels;
  for (const NodeProfile& node : scrape.nodes) {
    EXPECT_TRUE(node.enabled) << node.node;
    node_labels.insert(node.node);
    // The wire scrape carries only profiler families, never app metrics.
    EXPECT_EQ(node.profile.find("cachecloud_gets_total"), nullptr);
  }
  EXPECT_EQ(node_labels.size(), cluster.num_caches() + 1u);
  EXPECT_TRUE(node_labels.count("cache-0"));
  EXPECT_TRUE(node_labels.count("origin"));

  const obs::ContentionSummary summary = summarize_profiles(scrape, 0);
  EXPECT_TRUE(summary.enabled);
  // Every cache node took its state_mutex_ for each get it served.
  std::set<std::string> state_mutex_nodes;
  for (const obs::LockSummary& lock : summary.locks) {
    EXPECT_GE(lock.acquisitions, lock.contended);
    if (lock.lock == "state_mutex_" && lock.acquisitions > 0) {
      state_mutex_nodes.insert(lock.node);
    }
  }
  for (NodeId id = 0; id < cluster.num_caches(); ++id) {
    EXPECT_TRUE(state_mutex_nodes.count("cache-" + std::to_string(id)))
        << "no state_mutex_ acquisitions attributed to cache-" << id;
  }

  // The servers really moved bytes, and their worker threads are live.
  EXPECT_FALSE(summary.io.empty());
  std::uint64_t recv_bytes = 0;
  for (const obs::IoSummary& io : summary.io) recv_bytes += io.recv_bytes;
  EXPECT_GT(recv_bytes, 0u);
  EXPECT_FALSE(summary.workers.empty());
}

TEST(NodeProfileTest, DisabledProfilingScrapesAsOff) {
  const ProfilingGuard guard(false);
  Cluster cluster(small_config());
  drive_traffic(cluster);

  const ProfileScrapeResult scrape = scrape_profiles(all_ports(cluster));
  ASSERT_EQ(scrape.nodes_scraped, cluster.num_caches() + 1u);
  for (const NodeProfile& node : scrape.nodes) {
    EXPECT_FALSE(node.enabled) << node.node;
  }

  const obs::ContentionSummary summary = summarize_profiles(scrape);
  EXPECT_FALSE(summary.enabled);
  // Dormant mutexes recorded nothing, and the report says why.
  for (const obs::LockSummary& lock : summary.locks) {
    EXPECT_EQ(lock.acquisitions, 0u) << lock.node << "/" << lock.lock;
  }
  EXPECT_NE(obs::contention_table(summary).find("profiling was off"),
            std::string::npos);
}

TEST(NodeProfileTest, UnreachableNodesBecomeErrorsNotThrows) {
  const ProfilingGuard guard(true);
  Cluster cluster(small_config());
  const std::uint16_t dead_port = cluster.cache(0).port();
  const std::uint16_t live_port = cluster.cache(1).port();
  cluster.crash(0);

  const ProfileScrapeResult scrape =
      scrape_profiles({dead_port, live_port}, 2.0);
  EXPECT_EQ(scrape.nodes_scraped, 1u);
  ASSERT_EQ(scrape.nodes.size(), 1u);
  EXPECT_EQ(scrape.nodes[0].node, "cache-1");
  ASSERT_EQ(scrape.errors.size(), 1u);
  EXPECT_NE(scrape.errors[0].find(std::to_string(dead_port)),
            std::string::npos);
}

}  // namespace
}  // namespace cachecloud::node
