#include "core/subrange.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cachecloud::core {
namespace {

// Checks the partition invariant: consecutive, non-empty, covering
// [0, irh_gen).
void expect_partition(const std::vector<SubRange>& ranges,
                      std::uint32_t irh_gen) {
  ASSERT_FALSE(ranges.empty());
  std::uint32_t expected_lo = 0;
  for (const SubRange& r : ranges) {
    EXPECT_EQ(r.lo, expected_lo);
    EXPECT_GE(r.hi, r.lo);
    expected_lo = r.hi + 1;
  }
  EXPECT_EQ(expected_lo, irh_gen);
}

// Total load of `loads` falling into each of `ranges`.
std::vector<double> loads_per_range(const std::vector<SubRange>& ranges,
                                    const std::vector<double>& loads) {
  std::vector<double> out(ranges.size(), 0.0);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::uint32_t k = ranges[i].lo; k <= ranges[i].hi; ++k) {
      out[i] += loads[k];
    }
  }
  return out;
}

std::vector<PointLoad> make_points(const std::vector<SubRange>& ranges,
                                   const std::vector<double>& loads,
                                   bool with_per_irh,
                                   const std::vector<double>& caps = {}) {
  std::vector<PointLoad> points(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    points[i].capability = caps.empty() ? 1.0 : caps[i];
    points[i].range = ranges[i];
    for (std::uint32_t k = ranges[i].lo; k <= ranges[i].hi; ++k) {
      points[i].cycle_load += loads[k];
      if (with_per_irh) points[i].per_irh.push_back(loads[k]);
    }
  }
  return points;
}

TEST(InitialSubrangesTest, EqualCapabilitiesSplitEvenly) {
  const std::vector<double> caps{1.0, 1.0};
  const auto ranges = initial_subranges(caps, 10);
  expect_partition(ranges, 10);
  EXPECT_EQ(ranges[0], (SubRange{0, 4}));
  EXPECT_EQ(ranges[1], (SubRange{5, 9}));
}

TEST(InitialSubrangesTest, CapabilityProportional) {
  const std::vector<double> caps{3.0, 1.0};
  const auto ranges = initial_subranges(caps, 1000);
  expect_partition(ranges, 1000);
  EXPECT_NEAR(ranges[0].length(), 750u, 1);
}

TEST(InitialSubrangesTest, RejectsBadInput) {
  EXPECT_THROW(initial_subranges({}, 10), std::invalid_argument);
  const std::vector<double> caps{1.0, 0.0};
  EXPECT_THROW(initial_subranges(caps, 10), std::invalid_argument);
  const std::vector<double> many(20, 1.0);
  EXPECT_THROW(initial_subranges(many, 10), std::invalid_argument);
}

// The paper's worked example (Fig 2): IrHGen = 10, two equal beacon points,
// loads 135,175,100,60,30 | 25,50,75,50,100 -> totals 500 and 300.
TEST(DetermineSubrangesTest, PaperFig2CompleteInfo) {
  const std::vector<double> loads{135, 175, 100, 60, 30, 25, 50, 75, 50, 100};
  const std::vector<SubRange> ranges{{0, 4}, {5, 9}};
  const auto points = make_points(ranges, loads, /*with_per_irh=*/true);
  EXPECT_DOUBLE_EQ(points[0].cycle_load, 500.0);
  EXPECT_DOUBLE_EQ(points[1].cycle_load, 300.0);

  const auto next = determine_subranges(points, 10);
  expect_partition(next, 10);
  // Fig 2-B: two hash values shift, giving loads 410 / 390.
  EXPECT_EQ(next[0], (SubRange{0, 2}));
  const auto balanced = loads_per_range(next, loads);
  EXPECT_DOUBLE_EQ(balanced[0], 410.0);
  EXPECT_DOUBLE_EQ(balanced[1], 390.0);
}

TEST(DetermineSubrangesTest, PaperFig2ApproximateInfo) {
  const std::vector<double> loads{135, 175, 100, 60, 30, 25, 50, 75, 50, 100};
  const std::vector<SubRange> ranges{{0, 4}, {5, 9}};
  const auto points = make_points(ranges, loads, /*with_per_irh=*/false);

  const auto next = determine_subranges(points, 10);
  expect_partition(next, 10);
  // With CAvgLoad approximation (100 per value at point 0) only one value
  // moves (Fig 2-C shifts fewer values than Fig 2-B).
  EXPECT_EQ(next[0], (SubRange{0, 3}));
  const auto balanced = loads_per_range(next, loads);
  // Actual realized loads: 470 / 330 — coarser than the complete-info 410/390.
  EXPECT_DOUBLE_EQ(balanced[0], 470.0);
  EXPECT_DOUBLE_EQ(balanced[1], 330.0);
  EXPECT_GT(std::abs(balanced[0] - balanced[1]), 410.0 - 390.0);
}

TEST(DetermineSubrangesTest, ZeroLoadFallsBackToCapabilitySplit) {
  std::vector<PointLoad> points(2);
  points[0].range = SubRange{0, 1};
  points[1].range = SubRange{2, 9};
  points[0].capability = points[1].capability = 1.0;
  const auto next = determine_subranges(points, 10);
  expect_partition(next, 10);
  EXPECT_EQ(next[0].length(), 5u);
}

TEST(DetermineSubrangesTest, CapabilityWeighting) {
  // Uniform load, capabilities 3:1 -> point 0 should take ~3/4 of values.
  const std::vector<double> loads(100, 1.0);
  const std::vector<SubRange> ranges{{0, 49}, {50, 99}};
  const auto points =
      make_points(ranges, loads, /*with_per_irh=*/true, {3.0, 1.0});
  const auto next = determine_subranges(points, 100);
  expect_partition(next, 100);
  EXPECT_NEAR(next[0].length(), 75u, 1);
}

TEST(DetermineSubrangesTest, EveryPointKeepsAtLeastOneValue) {
  // All the load on the last value; earlier points must still get >= 1.
  std::vector<double> loads(8, 0.0);
  loads[7] = 100.0;
  const std::vector<SubRange> ranges{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const auto points = make_points(ranges, loads, /*with_per_irh=*/true);
  const auto next = determine_subranges(points, 8);
  expect_partition(next, 8);
  for (const SubRange& r : next) EXPECT_GE(r.length(), 1u);
}

TEST(DetermineSubrangesTest, RejectsMalformedInput) {
  std::vector<PointLoad> points(2);
  points[0].range = SubRange{0, 4};
  points[1].range = SubRange{6, 9};  // gap at 5
  EXPECT_THROW(determine_subranges(points, 10), std::invalid_argument);

  points[1].range = SubRange{5, 9};
  points[1].capability = -1.0;
  EXPECT_THROW(determine_subranges(points, 10), std::invalid_argument);

  points[1].capability = 1.0;
  points[1].per_irh = {1.0};  // wrong length
  EXPECT_THROW(determine_subranges(points, 10), std::invalid_argument);

  EXPECT_THROW(determine_subranges({}, 10), std::invalid_argument);
}

// Property sweep over (ring size, skew, per-IrH info): re-balancing from an
// equal split must never worsen the max/mean imbalance of the realized
// loads, and usually improves it.
class RebalanceSweep
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(RebalanceSweep, ImprovesOrPreservesImbalance) {
  const auto [num_points, alpha, with_per_irh] = GetParam();
  constexpr std::uint32_t kIrhGen = 1000;
  util::Rng rng(static_cast<std::uint64_t>(num_points * 1000 + alpha * 100 +
                                           with_per_irh));

  // Zipf-like load over hash values with random rank assignment.
  std::vector<double> loads(kIrhGen);
  for (std::uint32_t k = 0; k < kIrhGen; ++k) {
    loads[k] = 1000.0 / std::pow(static_cast<double>(rng.next_below(kIrhGen)) +
                                     1.0,
                                 alpha);
  }

  std::vector<double> caps(num_points, 1.0);
  std::vector<SubRange> ranges = initial_subranges(caps, kIrhGen);
  const auto before = util::summarize(loads_per_range(ranges, loads));

  const auto points = make_points(ranges, loads, with_per_irh);
  const auto next = determine_subranges(points, kIrhGen);
  expect_partition(next, kIrhGen);
  const auto after = util::summarize(loads_per_range(next, loads));

  if (with_per_irh) {
    EXPECT_LE(after.max_to_mean_ratio(), before.max_to_mean_ratio() + 1e-9);
  } else {
    // The CAvgLoad approximation can overshoot slightly but must not blow up.
    EXPECT_LE(after.max_to_mean_ratio(),
              before.max_to_mean_ratio() * 1.25 + 0.1);
  }
  // Load is conserved: partitioning never creates or destroys load.
  EXPECT_NEAR(after.sum(), before.sum(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RebalanceSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 10),
                       ::testing::Values(0.0, 0.5, 0.9, 1.2),
                       ::testing::Bool()));

// Iterated re-balancing with exact information converges to a stable,
// well-balanced partition.
TEST(DetermineSubrangesTest, IterationConverges) {
  constexpr std::uint32_t kIrhGen = 500;
  util::Rng rng(99);
  std::vector<double> loads(kIrhGen);
  for (auto& l : loads) l = rng.next_double() * 10.0;
  loads[3] = 4000.0;  // one scorching value

  std::vector<double> caps(5, 1.0);
  std::vector<SubRange> ranges = initial_subranges(caps, kIrhGen);
  for (int iter = 0; iter < 6; ++iter) {
    const auto points = make_points(ranges, loads, /*with_per_irh=*/true);
    ranges = determine_subranges(points, kIrhGen);
  }
  expect_partition(ranges, kIrhGen);
  const auto final_stats = util::summarize(loads_per_range(ranges, loads));
  // One value holds ~62% of all load, so the best possible max/mean is
  // ~3.1x; the scheme should be close to that floor, not far above it.
  EXPECT_LT(final_stats.coefficient_of_variation(), 1.4);
}

}  // namespace
}  // namespace cachecloud::core
