// End-to-end tests of the distributed cache cloud over real loopback TCP.
#include <gtest/gtest.h>

#include <string>

#include "node/cluster.hpp"
#include "node/protocol.hpp"

namespace cachecloud::node {
namespace {

NodeConfig small_config(const std::string& placement = "adhoc") {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = placement;
  return config;
}

TEST(ProtocolTest, AllMessagesRoundTrip) {
  {
    LookupReq msg{"/a/b.html"};
    EXPECT_EQ(LookupReq::decode(msg.encode()).url, msg.url);
  }
  {
    LookupResp msg;
    msg.found = true;
    msg.version = 42;
    msg.holders = {0, 2, 3};
    const LookupResp back = LookupResp::decode(msg.encode());
    EXPECT_TRUE(back.found);
    EXPECT_EQ(back.version, 42u);
    EXPECT_EQ(back.holders, msg.holders);
  }
  {
    RegisterHolder msg{"/x", 3, 7};
    const RegisterHolder back = RegisterHolder::decode(msg.encode());
    EXPECT_EQ(back.url, "/x");
    EXPECT_EQ(back.node, 3u);
    EXPECT_EQ(back.version, 7u);
  }
  {
    UpdatePush msg;
    msg.url = "/y";
    msg.version = 9;
    msg.body = {1, 2, 3, 4};
    const UpdatePush back = UpdatePush::decode(msg.encode());
    EXPECT_EQ(back.version, 9u);
    EXPECT_EQ(back.body, msg.body);
  }
  {
    LoadReport msg;
    msg.node = 1;
    msg.capability = 2.0;
    RingLoadReport ring;
    ring.ring = 0;
    ring.range = core::SubRange{0, 2};
    ring.cycle_load = 6.0;
    ring.per_irh = {1.0, 2.0, 3.0};
    msg.rings.push_back(ring);
    const LoadReport back = LoadReport::decode(msg.encode());
    ASSERT_EQ(back.rings.size(), 1u);
    EXPECT_EQ(back.rings[0].per_irh, ring.per_irh);
    EXPECT_DOUBLE_EQ(back.capability, 2.0);
  }
  {
    RangeAnnounce msg;
    msg.rings = {{RangeEntry{{0, 49}, 0}, RangeEntry{{50, 99}, 1}}};
    const RangeAnnounce back = RangeAnnounce::decode(msg.encode());
    ASSERT_EQ(back.rings.size(), 1u);
    EXPECT_EQ(back.rings[0][1].owner, 1u);
    EXPECT_EQ(back.rings[0][1].range, (core::SubRange{50, 99}));
  }
  {
    RecordHandoff msg;
    msg.records.push_back(HandoffRecord{"/z", 3, {1, 2}});
    const RecordHandoff back = RecordHandoff::decode(msg.encode());
    ASSERT_EQ(back.records.size(), 1u);
    EXPECT_EQ(back.records[0].holders, (std::vector<NodeId>{1, 2}));
  }
  {
    StatsResp msg;
    SCOPED_TRACE("StatsResp");
    obs::SampleSnapshot sample;
    sample.name = "cachecloud_gets_total";
    sample.help = "Requests by hit class";
    sample.kind = obs::MetricKind::Counter;
    sample.labels = {{"class", "local"}};
    sample.value = 12.0;
    msg.snapshot.samples.push_back(sample);
    obs::HistogramSnapshot hist;
    hist.name = "cachecloud_get_latency_seconds";
    hist.help = "End-to-end get latency";
    hist.bounds = {0.001, 0.01, 0.1};
    hist.counts = {4, 2, 1, 0};  // +Inf bucket last
    hist.sum = 0.05;
    hist.count = 7;
    msg.snapshot.histograms.push_back(hist);
    const StatsResp back = StatsResp::decode(msg.encode());
    ASSERT_EQ(back.snapshot.samples.size(), 1u);
    EXPECT_EQ(back.snapshot.samples[0].name, sample.name);
    EXPECT_EQ(back.snapshot.samples[0].labels, sample.labels);
    EXPECT_DOUBLE_EQ(back.snapshot.samples[0].value, 12.0);
    ASSERT_EQ(back.snapshot.histograms.size(), 1u);
    EXPECT_EQ(back.snapshot.histograms[0].bounds, hist.bounds);
    EXPECT_EQ(back.snapshot.histograms[0].counts, hist.counts);
    EXPECT_EQ(back.snapshot.histograms[0].count, 7u);
    // A shipped snapshot renders the same exposition as a local one.
    EXPECT_EQ(obs::to_prometheus(back.snapshot),
              obs::to_prometheus(msg.snapshot));
  }
  {
    // Wrong-type frames are rejected.
    LookupReq msg{"/a"};
    EXPECT_THROW(FetchReq::decode(msg.encode()), net::DecodeError);
  }
}

TEST(ClusterTest, OriginFetchThenLocalHit) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/index.html", 512);

  const auto first = cluster.cache(0).get("/index.html");
  EXPECT_EQ(first.source, CacheNode::GetResult::Source::Origin);
  EXPECT_EQ(first.version, 1u);
  EXPECT_EQ(first.body,
            OriginNode::make_body("/index.html", 1, 512));
  EXPECT_TRUE(first.stored);

  const auto second = cluster.cache(0).get("/index.html");
  EXPECT_EQ(second.source, CacheNode::GetResult::Source::Local);
  EXPECT_EQ(second.body, first.body);
}

TEST(ClusterTest, CloudHitFromPeer) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/doc", 256);

  (void)cluster.cache(1).get("/doc");
  const auto result = cluster.cache(2).get("/doc");
  EXPECT_EQ(result.source, CacheNode::GetResult::Source::Cloud);
  EXPECT_EQ(result.body, OriginNode::make_body("/doc", 1, 256));
  // Exactly one origin fetch happened for this document.
  EXPECT_EQ(cluster.origin().origin_fetches(), 1u);
}

TEST(ClusterTest, UpdatePropagatesToAllHolders) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/live", 128);

  (void)cluster.cache(0).get("/live");
  (void)cluster.cache(1).get("/live");
  (void)cluster.cache(3).get("/live");

  const std::uint64_t v2 = cluster.origin().publish_update("/live");
  EXPECT_EQ(v2, 2u);

  // Every holder serves the fresh version locally (no refetch).
  for (const NodeId id : {0u, 1u, 3u}) {
    const auto result = cluster.cache(id).get("/live");
    EXPECT_EQ(result.source, CacheNode::GetResult::Source::Local)
        << "cache " << id;
    EXPECT_EQ(result.version, 2u) << "cache " << id;
    EXPECT_EQ(result.body, OriginNode::make_body("/live", 2, 128))
        << "cache " << id;
  }
  EXPECT_EQ(cluster.origin().origin_fetches(), 1u);
}

TEST(ClusterTest, BeaconPlacementKeepsSingleCopy) {
  Cluster cluster(small_config("beacon"));
  cluster.origin().add_document("/solo", 64);

  const NodeId beacon =
      cluster.cache(0).ring_view().resolve("/solo").beacon;
  const NodeId requester = beacon == 0 ? 1 : 0;

  const auto result = cluster.cache(requester).get("/solo");
  EXPECT_EQ(result.source, CacheNode::GetResult::Source::Origin);
  EXPECT_FALSE(result.stored);
  EXPECT_FALSE(cluster.cache(requester).has_cached("/solo"));
  EXPECT_TRUE(cluster.cache(beacon).has_cached("/solo"));

  // A third cache now gets a cloud hit served by the beacon.
  const NodeId third = (beacon != 2 && requester != 2) ? 2 : 3;
  const auto hit = cluster.cache(third).get("/solo");
  EXPECT_EQ(hit.source, CacheNode::GetResult::Source::Cloud);
  EXPECT_EQ(cluster.origin().origin_fetches(), 1u);
}

TEST(ClusterTest, EvictionDeregistersAtBeacon) {
  NodeConfig config = small_config();
  config.capacity_bytes = 300;  // fits one 256-byte doc
  Cluster cluster(config);
  cluster.origin().add_document("/a", 256);
  cluster.origin().add_document("/b", 256);

  (void)cluster.cache(0).get("/a");
  (void)cluster.cache(0).get("/b");  // evicts /a, deregisters it
  EXPECT_FALSE(cluster.cache(0).has_cached("/a"));

  // Another cache's lookup must not be sent to cache 0 for /a: its get
  // falls through to the origin (no stale holder).
  const auto result = cluster.cache(1).get("/a");
  EXPECT_EQ(result.source, CacheNode::GetResult::Source::Origin);
}

TEST(ClusterTest, UtilityDropsHotUpdatedDocs) {
  NodeConfig config = small_config("utility");
  config.utility.threshold = 0.5;
  config.monitor_half_life_sec = 0.5;  // adapt fast in test time
  Cluster cluster(config);
  cluster.origin().add_document("/churn", 128);

  (void)cluster.cache(0).get("/churn");
  // Hammer updates; the holder should eventually re-evaluate and drop.
  bool dropped = false;
  for (int i = 0; i < 50 && !dropped; ++i) {
    cluster.origin().publish_update("/churn");
    dropped = !cluster.cache(0).has_cached("/churn");
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(cluster.cache(0).counters().drops_on_update, 0u);
}

TEST(ClusterTest, RebalanceMovesRecordsAndKeepsProtocolWorking) {
  NodeConfig config = small_config();
  Cluster cluster(config);

  // Create skewed beacon load: many documents, all requested through one
  // cache so lookups hammer the beacons.
  for (int i = 0; i < 120; ++i) {
    cluster.origin().add_document("/doc" + std::to_string(i), 64);
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 120; ++i) {
      (void)cluster.cache(static_cast<NodeId>(i % 4))
          .get("/doc" + std::to_string(i));
    }
  }

  const std::size_t records_before =
      cluster.cache(0).directory_records() +
      cluster.cache(1).directory_records() +
      cluster.cache(2).directory_records() +
      cluster.cache(3).directory_records();
  EXPECT_GT(records_before, 0u);

  const auto summary = cluster.origin().run_rebalance_cycle();
  (void)summary;  // moves depend on skew; protocol health matters below

  // Records are conserved across the hand-off.
  const std::size_t records_after =
      cluster.cache(0).directory_records() +
      cluster.cache(1).directory_records() +
      cluster.cache(2).directory_records() +
      cluster.cache(3).directory_records();
  EXPECT_EQ(records_after, records_before);

  // All views agree and every get still works (cloud hits, not origin).
  const std::uint64_t fetches_before = cluster.origin().origin_fetches();
  for (int i = 0; i < 120; ++i) {
    const auto result = cluster.cache(3).get("/doc" + std::to_string(i));
    EXPECT_FALSE(result.body.empty());
  }
  EXPECT_EQ(cluster.origin().origin_fetches(), fetches_before);
}

TEST(ClusterTest, SurvivesCrashedPeer) {
  Cluster cluster(small_config());
  cluster.origin().add_document("/x", 64);

  // Cache 1 holds the only copy; crash it.
  (void)cluster.cache(1).get("/x");
  cluster.crash(1);

  // Another cache's get must fall back to the origin (fetch from the dead
  // holder fails) and still succeed. When the dead node was also the
  // beacon, the cooperative lookup is skipped and the request is served
  // degraded instead of throwing; both paths must not hang.
  const NodeId beacon = cluster.cache(0).ring_view().resolve("/x").beacon;
  const auto result = cluster.cache(0).get("/x");
  EXPECT_EQ(result.source, CacheNode::GetResult::Source::Origin);
  EXPECT_EQ(result.body, OriginNode::make_body("/x", 1, 64));
  if (beacon == 1) {
    EXPECT_GE(
        cluster.cache(0).metrics_snapshot().sum_of(
            "cachecloud_degraded_serves_total"),
        1.0);
  }
}

}  // namespace
}  // namespace cachecloud::node
