#include "util/md5.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cachecloud::util {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(md5("").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").to_hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").to_hex(),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").to_hex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .to_hex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5("1234567890123456789012345678901234567890123456789012345678901"
                "2345678901234567890")
                .to_hex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, QuickBrownFox) {
  EXPECT_EQ(md5("The quick brown fox jumps over the lazy dog").to_hex(),
            "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5Test, IncrementalEqualsOneShot) {
  const std::string payload(1000, 'x');
  Md5 ctx;
  for (std::size_t chunk = 0; chunk < payload.size(); chunk += 7) {
    ctx.update(payload.substr(chunk, 7));
  }
  EXPECT_EQ(ctx.finish(), md5(payload));
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundary.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string payload(len, 'b');
    Md5 a;
    a.update(payload);
    Md5 b;
    b.update(payload.substr(0, len / 2));
    b.update(payload.substr(len / 2));
    EXPECT_EQ(a.finish(), b.finish()) << "length " << len;
  }
}

TEST(Md5Test, ResetReusesContext) {
  Md5 ctx;
  ctx.update("first message");
  (void)ctx.finish();
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(ctx.finish().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, WordsAreLittleEndianSlices) {
  const Md5Digest digest = md5("abc");
  // First byte of the digest is the low byte of word 0.
  EXPECT_EQ(digest.word32(0) & 0xFF, digest.bytes[0]);
  EXPECT_EQ(digest.word64(0) & 0xFF, digest.bytes[0]);
  EXPECT_EQ((digest.word64(1) >> 56) & 0xFF, digest.bytes[15]);
  // Indices wrap instead of reading out of bounds.
  EXPECT_EQ(digest.word32(4), digest.word32(0));
  EXPECT_EQ(digest.word64(2), digest.word64(0));
}

TEST(Md5Test, DistinctUrlsDistinctDigests) {
  EXPECT_NE(md5("/doc/1"), md5("/doc/2"));
  EXPECT_NE(md5("/doc/1"), md5("/doc/1 "));
}

}  // namespace
}  // namespace cachecloud::util
