#include "sim/edge_network.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace cachecloud::sim {
namespace {

trace::Trace grid_trace(trace::CacheId total_caches) {
  trace::ZipfTraceConfig config;
  config.num_docs = 400;
  config.num_caches = total_caches;
  config.duration_sec = 300.0;
  config.requests_per_sec = 20.0;
  config.updates_per_minute = 60.0;
  config.seed = 41;
  return trace::generate_zipf_trace(config);
}

EdgeNetworkConfig network_config(std::uint32_t clouds,
                                 std::uint32_t caches_per_cloud) {
  EdgeNetworkConfig config;
  config.num_clouds = clouds;
  config.cloud.num_caches = caches_per_cloud;
  config.cloud.ring_size = 2;
  config.cloud.placement = "adhoc";
  config.cloud.cycle_sec = 60.0;
  return config;
}

TEST(EdgeNetworkTest, RoutesRequestsToTheRightCloud) {
  const trace::Trace t = grid_trace(8);
  EdgeNetwork network(network_config(2, 4), t);

  // Request at global cache 5 = cloud 1, local cache 1.
  network.handle_request(5, 0, 1.0);
  EXPECT_TRUE(network.cloud(1).store(1).contains(0));
  EXPECT_FALSE(network.cloud(0).store(1).contains(0));

  // Clouds are isolated: cloud 0's miss cannot be served by cloud 1.
  const core::RequestOutcome outcome = network.handle_request(1, 0, 2.0);
  EXPECT_EQ(outcome.kind, core::RequestKind::GroupMiss);

  EXPECT_THROW(network.handle_request(99, 0, 3.0), std::out_of_range);
}

TEST(EdgeNetworkTest, UpdateReachesEveryCloudOnce) {
  const trace::Trace t = grid_trace(8);
  EdgeNetwork network(network_config(2, 4), t);
  network.handle_request(0, 7, 1.0);  // cloud 0 holds doc 7
  network.handle_request(4, 7, 2.0);  // cloud 1 holds doc 7
  network.handle_update(7, 3.0);

  EXPECT_EQ(network.cloud(0).doc_version(7), 2u);
  EXPECT_EQ(network.cloud(1).doc_version(7), 2u);
  EXPECT_EQ(network.cloud(0).store(0).peek(7)->version, 2u);
  EXPECT_EQ(network.cloud(1).store(0).peek(7)->version, 2u);

  const EdgeNetworkResult result = network.finish(3.0);
  // Origin messages: 2 group misses + 2 update notifications (one per
  // cloud), regardless of holder counts.
  EXPECT_EQ(result.origin_messages, 4u);
}

TEST(EdgeNetworkTest, SingleCloudMatchesRunSimulation) {
  const trace::Trace t = grid_trace(4);
  EdgeNetworkConfig config = network_config(1, 4);
  const EdgeNetworkResult grid = run_edge_network(config, t);

  core::CacheCloud cloud(config.cloud, t);
  SimConfig sim_config;
  sim_config.net = config.net;
  const SimResult single = run_simulation(cloud, t, sim_config);

  ASSERT_EQ(grid.per_cloud.size(), 1u);
  EXPECT_EQ(grid.per_cloud[0].requests, single.metrics.requests);
  EXPECT_EQ(grid.per_cloud[0].local_hits, single.metrics.local_hits);
  EXPECT_EQ(grid.per_cloud[0].cloud_hits, single.metrics.cloud_hits);
  EXPECT_EQ(grid.per_cloud[0].total_network_bytes(),
            single.metrics.total_network_bytes());
  EXPECT_EQ(grid.origin_messages, single.metrics.origin_messages);
}

TEST(EdgeNetworkTest, MoreCloudsMeanMoreOriginUpdateMessages) {
  const trace::Trace t = grid_trace(8);
  const EdgeNetworkResult two = run_edge_network(network_config(2, 4), t);
  const EdgeNetworkResult eight = run_edge_network(network_config(8, 1), t);
  // One update message per cloud: splitting the same caches into more
  // clouds multiplies the origin's consistency work.
  EXPECT_GT(eight.origin_messages, two.origin_messages);
  // And smaller cooperation domains serve less within the network.
  EXPECT_LT(eight.in_network_hit_rate(), two.in_network_hit_rate() + 1e-9);
}

}  // namespace
}  // namespace cachecloud::sim
