#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "sim/network_model.hpp"

namespace cachecloud::sim {
namespace {

TEST(NetworkModelTest, TransferTimes) {
  NetworkModel net;
  net.intra_bandwidth_bps = 80e6;  // 10 MB/s
  net.wan_bandwidth_bps = 8e6;     // 1 MB/s
  EXPECT_NEAR(net.intra_transfer_sec(10'000'000), 1.0, 1e-9);
  EXPECT_NEAR(net.wan_transfer_sec(1'000'000), 1.0, 1e-9);
  EXPECT_EQ(net.document_wire_bytes(1000), 1000 + net.transfer_header_bytes);
}

TEST(CloudMetricsTest, HitRates) {
  CloudMetrics metrics(4);
  metrics.requests = 100;
  metrics.local_hits = 60;
  metrics.cloud_hits = 25;
  metrics.group_misses = 15;
  EXPECT_DOUBLE_EQ(metrics.local_hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(metrics.cloud_hit_rate(), 0.85);
}

TEST(CloudMetricsTest, EmptyMetricsAreSafe) {
  const CloudMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.local_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.network_mb_per_minute(), 0.0);
  EXPECT_TRUE(metrics.beacon_load_per_minute().empty());
}

TEST(CloudMetricsTest, BeaconLoadPerMinute) {
  CloudMetrics metrics(2);
  metrics.beacon_lookups = {120.0, 60.0};
  metrics.beacon_updates = {30.0, 0.0};
  metrics.measured_sec = 120.0;  // 2 minutes
  const auto loads = metrics.beacon_load_per_minute();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 75.0);
  EXPECT_DOUBLE_EQ(loads[1], 30.0);
  const auto stats = metrics.beacon_load_stats();
  EXPECT_DOUBLE_EQ(stats.mean(), 52.5);
  EXPECT_NEAR(stats.max_to_mean_ratio(), 75.0 / 52.5, 1e-12);
}

TEST(CloudMetricsTest, NetworkRollup) {
  CloudMetrics metrics(1);
  metrics.control_bytes = 1'000'000;
  metrics.data_bytes_intra = 2'000'000;
  metrics.data_bytes_wan = 3'000'000;
  metrics.record_transfer_bytes = 500'000;
  metrics.measured_sec = 60.0;
  EXPECT_EQ(metrics.total_network_bytes(), 6'500'000u);
  EXPECT_NEAR(metrics.network_mb_per_minute(), 6.5, 1e-9);
}

TEST(CloudMetricsTest, SummaryMentionsKeyNumbers) {
  CloudMetrics metrics(2);
  metrics.requests = 10;
  metrics.local_hits = 5;
  metrics.measured_sec = 60.0;
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("requests=10"), std::string::npos);
  EXPECT_NE(summary.find("local_hit=50.0%"), std::string::npos);
}

}  // namespace
}  // namespace cachecloud::sim
