#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.hpp"
#include "sim/accounting.hpp"
#include "sim/metrics.hpp"
#include "sim/network_model.hpp"

namespace cachecloud::sim {
namespace {

TEST(NetworkModelTest, TransferTimes) {
  NetworkModel net;
  net.intra_bandwidth_bps = 80e6;  // 10 MB/s
  net.wan_bandwidth_bps = 8e6;     // 1 MB/s
  EXPECT_NEAR(net.intra_transfer_sec(10'000'000), 1.0, 1e-9);
  EXPECT_NEAR(net.wan_transfer_sec(1'000'000), 1.0, 1e-9);
  EXPECT_EQ(net.document_wire_bytes(1000), 1000 + net.transfer_header_bytes);
}

TEST(CloudMetricsTest, HitRates) {
  CloudMetrics metrics(4);
  metrics.requests = 100;
  metrics.local_hits = 60;
  metrics.cloud_hits = 25;
  metrics.group_misses = 15;
  EXPECT_DOUBLE_EQ(metrics.local_hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(metrics.cloud_hit_rate(), 0.85);
}

TEST(CloudMetricsTest, EmptyMetricsAreSafe) {
  const CloudMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.local_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.network_mb_per_minute(), 0.0);
  EXPECT_TRUE(metrics.beacon_load_per_minute().empty());
}

TEST(CloudMetricsTest, BeaconLoadPerMinute) {
  CloudMetrics metrics(2);
  metrics.beacon_lookups = {120.0, 60.0};
  metrics.beacon_updates = {30.0, 0.0};
  metrics.measured_sec = 120.0;  // 2 minutes
  const auto loads = metrics.beacon_load_per_minute();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 75.0);
  EXPECT_DOUBLE_EQ(loads[1], 30.0);
  const auto stats = metrics.beacon_load_stats();
  EXPECT_DOUBLE_EQ(stats.mean(), 52.5);
  EXPECT_NEAR(stats.max_to_mean_ratio(), 75.0 / 52.5, 1e-12);
}

TEST(CloudMetricsTest, NetworkRollup) {
  CloudMetrics metrics(1);
  metrics.control_bytes = 1'000'000;
  metrics.data_bytes_intra = 2'000'000;
  metrics.data_bytes_wan = 3'000'000;
  metrics.record_transfer_bytes = 500'000;
  metrics.measured_sec = 60.0;
  EXPECT_EQ(metrics.total_network_bytes(), 6'500'000u);
  EXPECT_NEAR(metrics.network_mb_per_minute(), 6.5, 1e-9);
}

TEST(CloudMetricsTest, SummaryMentionsKeyNumbers) {
  CloudMetrics metrics(2);
  metrics.requests = 10;
  metrics.local_hits = 5;
  metrics.measured_sec = 60.0;
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("requests=10"), std::string::npos);
  EXPECT_NE(summary.find("local_hit=50.0%"), std::string::npos);
}

TEST(CloudMetricsTest, ReconcilesPartitionsEveryRequest) {
  CloudMetrics metrics(2);
  metrics.requests = 100;
  metrics.local_hits = 60;
  metrics.cloud_hits = 25;
  metrics.group_misses = 15;
  EXPECT_TRUE(metrics.reconciles());
  ++metrics.requests;  // one request with no hit class: accounting bug
  EXPECT_FALSE(metrics.reconciles());
}

TEST(AccountingTest, FinishReconcilesRealOutcomes) {
  Accounting accounting(4, NetworkModel{});
  core::RequestOutcome local;
  local.kind = core::RequestKind::LocalHit;
  core::RequestOutcome cloud;
  cloud.kind = core::RequestKind::CloudHit;
  cloud.beacon = 1;
  cloud.discovery_hops = 1;
  cloud.doc_bytes = 1000;
  core::RequestOutcome miss;
  miss.kind = core::RequestKind::GroupMiss;
  miss.beacon = 2;
  miss.discovery_hops = 1;
  miss.doc_bytes = 1000;
  accounting.on_request(local, 1.0);
  accounting.on_request(cloud, 2.0);
  accounting.on_request(miss, 3.0);
  const CloudMetrics metrics = accounting.finish(10.0);
  EXPECT_TRUE(metrics.reconciles());
  EXPECT_EQ(metrics.requests, 3u);
  EXPECT_EQ(metrics.local_hits + metrics.cloud_hits + metrics.group_misses,
            3u);
}

TEST(AccountingTest, FinishAcceptsBalancedTallies) {
  // on_request always files each measured request under exactly one hit
  // class, so a divergence can only come from an accounting bug — which is
  // why finish() guards it with a throw rather than a metric. An empty
  // window (0 == 0 + 0 + 0) and normal traffic both pass the guard.
  Accounting accounting(1, NetworkModel{});
  EXPECT_NO_THROW(accounting.finish(1.0));
}

TEST(CloudMetricsTest, ExportToRegistrySharesLiveMetricNames) {
  CloudMetrics metrics(2);
  metrics.requests = 100;
  metrics.local_hits = 60;
  metrics.cloud_hits = 25;
  metrics.group_misses = 15;
  metrics.evictions = 7;
  metrics.stored_copies = 40;
  metrics.measured_sec = 60.0;

  obs::Registry registry;
  metrics.export_to(registry);
  const obs::Snapshot snap = registry.snapshot();

  // Hit classes land under the live CacheNode's metric name and sum to the
  // request count.
  EXPECT_DOUBLE_EQ(snap.sum_of("cachecloud_gets_total"), 100.0);
  const auto* local =
      snap.find("cachecloud_gets_total", {{"class", "local"}});
  ASSERT_NE(local, nullptr);
  EXPECT_DOUBLE_EQ(local->value, 60.0);
  const auto* evictions = snap.find("cachecloud_evictions_total");
  ASSERT_NE(evictions, nullptr);
  EXPECT_DOUBLE_EQ(evictions->value, 7.0);

  // Re-exporting the same metrics is idempotent (delta export).
  metrics.export_to(registry);
  EXPECT_DOUBLE_EQ(registry.snapshot().sum_of("cachecloud_gets_total"),
                   100.0);

  // A grown tally advances the counters.
  metrics.requests += 10;
  metrics.local_hits += 10;
  metrics.export_to(registry);
  EXPECT_DOUBLE_EQ(registry.snapshot().sum_of("cachecloud_gets_total"),
                   110.0);
}

}  // namespace
}  // namespace cachecloud::sim
