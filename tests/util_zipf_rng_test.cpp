#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace cachecloud::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // Roughly uniform over a small bound.
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[rng.next_below(4)];
  for (const int c : counts) {
    EXPECT_NEAR(c, 10'000, 500);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(13);
  for (const double mean : {0.5, 5.0, 80.0}) {
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.next_poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 0.9), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler z(1000, 0.9);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const ZipfSampler z(100, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) {
    EXPECT_NEAR(z.pmf(k), 0.01, 1e-12);
  }
}

TEST(ZipfTest, FollowsPowerLaw) {
  // For alpha=1, pmf(0)/pmf(9) should be 10.
  const ZipfSampler z(1000, 1.0);
  EXPECT_NEAR(z.pmf(0) / z.pmf(9), 10.0, 1e-9);
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler z(50, 0.9);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    const double expected = z.pmf(k) * n;
    EXPECT_NEAR(counts[k], expected, expected * 0.1 + 30.0) << "rank " << k;
  }
}

// Property sweep: samples always within range, and rank 0 is the mode for
// any positive skew.
class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, SamplesInRangeAndSkewed) {
  const double alpha = GetParam();
  const ZipfSampler z(200, alpha);
  Rng rng(31);
  std::vector<int> counts(200, 0);
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t rank = z.sample(rng);
    ASSERT_LT(rank, 200u);
    ++counts[rank];
  }
  if (alpha > 0.2) {
    EXPECT_GE(counts[0], counts[100]);
    EXPECT_GE(counts[0], counts[199]);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.7, 0.9, 0.99, 1.2));

}  // namespace
}  // namespace cachecloud::util
