#include "core/directory.hpp"

#include <gtest/gtest.h>

namespace cachecloud::core {
namespace {

TEST(LookupDirectoryTest, AddFindRemove) {
  LookupDirectory dir;
  EXPECT_EQ(dir.find(1), nullptr);
  EXPECT_EQ(dir.holder_count(1), 0u);

  dir.add_holder(1, 3);
  dir.add_holder(1, 0);
  dir.add_holder(1, 3);  // idempotent
  ASSERT_NE(dir.find(1), nullptr);
  EXPECT_EQ(dir.holder_count(1), 2u);
  EXPECT_TRUE(dir.is_holder(1, 3));
  EXPECT_TRUE(dir.is_holder(1, 0));
  EXPECT_FALSE(dir.is_holder(1, 5));
  // Holders stay sorted.
  EXPECT_EQ(dir.find(1)->holders, (std::vector<CacheId>{0, 3}));

  EXPECT_TRUE(dir.remove_holder(1, 3));
  EXPECT_FALSE(dir.remove_holder(1, 3));
  EXPECT_EQ(dir.holder_count(1), 1u);
  // Removing the last holder drops the record.
  EXPECT_TRUE(dir.remove_holder(1, 0));
  EXPECT_EQ(dir.find(1), nullptr);
  EXPECT_EQ(dir.record_count(), 0u);
}

TEST(LookupDirectoryTest, RemoveFromUnknownDoc) {
  LookupDirectory dir;
  EXPECT_FALSE(dir.remove_holder(9, 1));
}

TEST(LookupDirectoryTest, VersionTracking) {
  LookupDirectory dir;
  dir.set_version(1, 5);  // no record yet: ignored
  EXPECT_EQ(dir.find(1), nullptr);
  dir.add_holder(1, 0);
  dir.set_version(1, 5);
  EXPECT_EQ(dir.find(1)->version, 5u);
  dir.set_version(1, 3);  // never regresses
  EXPECT_EQ(dir.find(1)->version, 5u);
}

TEST(LookupDirectoryTest, RemoveCachePurgesEverywhere) {
  LookupDirectory dir;
  dir.add_holder(1, 0);
  dir.add_holder(1, 2);
  dir.add_holder(2, 2);
  dir.add_holder(3, 1);
  EXPECT_EQ(dir.remove_cache(2), 2u);
  EXPECT_EQ(dir.holder_count(1), 1u);
  EXPECT_EQ(dir.find(2), nullptr);  // record vanished with its only holder
  EXPECT_EQ(dir.holder_count(3), 1u);
  EXPECT_EQ(dir.remove_cache(2), 0u);  // already gone
}

}  // namespace
}  // namespace cachecloud::core
