#include "loadgen/plan.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace cachecloud::loadgen {
namespace {

WorkloadConfig small_zipf() {
  WorkloadConfig w;
  w.workload = Workload::Zipf;
  w.num_docs = 50;
  w.num_caches = 4;
  w.update_fraction = 0.1;
  return w;
}

ScheduleConfig open_schedule() {
  ScheduleConfig s;
  s.mode = Mode::Open;
  s.arrival = Arrival::Poisson;
  s.rate = 200.0;
  s.warmup_sec = 1.0;
  s.duration_sec = 4.0;
  return s;
}

TEST(LoadgenPlan, SameSeedSameSchedule) {
  const Plan a = build_plan(small_zipf(), open_schedule(), 7);
  const Plan b = build_plan(small_zipf(), open_schedule(), 7);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.urls, b.urls);
}

TEST(LoadgenPlan, DifferentSeedDifferentSchedule) {
  const Plan a = build_plan(small_zipf(), open_schedule(), 7);
  const Plan b = build_plan(small_zipf(), open_schedule(), 8);
  EXPECT_NE(a.ops, b.ops);
}

TEST(LoadgenPlan, IntendedStartsMonotoneAndInsidePhases) {
  const Plan plan = build_plan(small_zipf(), open_schedule(), 11);
  ASSERT_FALSE(plan.ops.empty());
  double prev = -1.0;
  for (const PlannedOp& op : plan.ops) {
    EXPECT_GE(op.at, prev);
    prev = op.at;
    ASSERT_LT(op.phase, plan.phases.size());
    const PhaseSpec& phase = plan.phases[op.phase];
    EXPECT_GE(op.at, phase.start);
    EXPECT_LT(op.at, phase.end);
    EXPECT_LT(op.doc, plan.urls.size());
    EXPECT_LT(op.cache, 4u);
  }
  // Poisson at 200/s over 5s total: op count should be in a sane band.
  EXPECT_GT(plan.ops.size(), 600u);
  EXPECT_LT(plan.ops.size(), 1400u);
}

TEST(LoadgenPlan, RampPhaseBoundariesExact) {
  ScheduleConfig s;
  s.mode = Mode::Ramp;
  s.arrival = Arrival::Fixed;
  s.warmup_sec = 0.5;
  s.duration_sec = 2.0;
  s.ramp_start = 100.0;
  s.ramp_step = 50.0;
  s.ramp_steps = 3;
  const Plan plan = build_plan(small_zipf(), s, 5);

  ASSERT_EQ(plan.phases.size(), 4u);  // warmup + 3 steps
  EXPECT_EQ(plan.phases[0].name, "warmup");
  EXPECT_FALSE(plan.phases[0].measured);
  EXPECT_DOUBLE_EQ(plan.phases[0].start, 0.0);
  EXPECT_DOUBLE_EQ(plan.phases[0].end, 0.5);
  for (int i = 1; i <= 3; ++i) {
    const PhaseSpec& step = plan.phases[static_cast<std::size_t>(i)];
    EXPECT_EQ(step.name, "step" + std::to_string(i));
    EXPECT_TRUE(step.measured);
    EXPECT_DOUBLE_EQ(step.start, 0.5 + 2.0 * (i - 1));
    EXPECT_DOUBLE_EQ(step.end, 0.5 + 2.0 * i);
    EXPECT_DOUBLE_EQ(step.offered_rate, 100.0 + 50.0 * (i - 1));
  }

  // Fixed arrivals: first op of each phase lands exactly on its start and
  // each phase contributes exactly round(len * rate) ops.
  std::vector<std::uint64_t> counts(plan.phases.size(), 0);
  std::vector<double> first(plan.phases.size(), -1.0);
  for (const PlannedOp& op : plan.ops) {
    if (first[op.phase] < 0.0) first[op.phase] = op.at;
    ++counts[op.phase];
  }
  EXPECT_DOUBLE_EQ(first[1], plan.phases[1].start);
  EXPECT_DOUBLE_EQ(first[2], plan.phases[2].start);
  EXPECT_DOUBLE_EQ(first[3], plan.phases[3].start);
  EXPECT_EQ(counts[1], 200u);  // 2s * 100/s
  EXPECT_EQ(counts[2], 300u);
  EXPECT_EQ(counts[3], 400u);
}

TEST(LoadgenPlan, FlashWorkloadSplitsMeasureAndConcentratesLoad) {
  WorkloadConfig w = small_zipf();
  w.workload = Workload::Flash;
  w.flash_start_frac = 0.25;
  w.flash_duration_frac = 0.5;
  w.flash_multiplier = 4.0;
  w.flash_hot_docs = 5;
  w.flash_hot_fraction = 1.0;
  w.update_fraction = 0.0;
  ScheduleConfig s = open_schedule();
  s.warmup_sec = 0.0;
  s.duration_sec = 8.0;
  s.arrival = Arrival::Fixed;
  const Plan plan = build_plan(w, s, 9);

  ASSERT_EQ(plan.phases.size(), 3u);
  EXPECT_EQ(plan.phases[0].name, "pre_flash");
  EXPECT_EQ(plan.phases[1].name, "flash");
  EXPECT_EQ(plan.phases[2].name, "post_flash");
  EXPECT_DOUBLE_EQ(plan.phases[1].start, 2.0);
  EXPECT_DOUBLE_EQ(plan.phases[1].end, 6.0);
  EXPECT_DOUBLE_EQ(plan.phases[1].offered_rate, 800.0);

  for (const PlannedOp& op : plan.ops) {
    if (plan.phases[op.phase].name == "flash") {
      EXPECT_LT(op.doc, 5u);  // hot_fraction = 1: every flash get is hot
    }
  }
}

TEST(LoadgenPlan, ClosedModePlansSameOpMixAsOpen) {
  ScheduleConfig s = open_schedule();
  s.mode = Mode::Closed;
  const Plan plan = build_plan(small_zipf(), s, 13);
  ASSERT_FALSE(plan.ops.empty());
  std::uint64_t publishes = 0;
  for (const PlannedOp& op : plan.ops) {
    if (op.kind == PlannedOp::Kind::Publish) ++publishes;
  }
  const double frac =
      static_cast<double>(publishes) / static_cast<double>(plan.ops.size());
  EXPECT_NEAR(frac, 0.1, 0.05);
}

TEST(LoadgenPlan, TraceReplayPreservesEventTimesAndDocs) {
  trace::ZipfTraceConfig config;
  config.num_docs = 30;
  config.num_caches = 6;
  config.duration_sec = 5.0;
  config.requests_per_sec = 100.0;
  config.updates_per_minute = 60.0;
  config.seed = 21;
  const trace::Trace tr = trace::generate_zipf_trace(config);
  const std::string path =
      testing::TempDir() + "loadgen_plan_replay.trace";
  trace::write_trace_file(path, tr);

  WorkloadConfig w;
  w.workload = Workload::Trace;
  w.trace_file = path;
  w.num_caches = 3;  // trace cache ids fold onto 3 live caches
  ScheduleConfig s;
  s.mode = Mode::Open;
  s.warmup_sec = 1.0;
  s.duration_sec = 3.0;
  const Plan plan = build_plan(w, s, 1);
  std::remove(path.c_str());

  ASSERT_EQ(plan.urls.size(), tr.num_docs());
  ASSERT_FALSE(plan.ops.empty());
  std::size_t i = 0;
  for (const trace::Event& event : tr.events()) {
    if (event.time >= 4.0) break;  // warmup + duration window
    ASSERT_LT(i, plan.ops.size());
    const PlannedOp& op = plan.ops[i++];
    // The text trace format rounds times to ~10 significant digits.
    EXPECT_NEAR(op.at, event.time, 1e-8);
    EXPECT_EQ(op.doc, event.doc);
    EXPECT_EQ(op.kind, event.type == trace::EventType::Update
                           ? PlannedOp::Kind::Publish
                           : PlannedOp::Kind::Get);
    EXPECT_LT(op.cache, 3u);
  }
  EXPECT_EQ(i, plan.ops.size());
}

TEST(LoadgenPlan, RejectsInvalidConfigs) {
  ScheduleConfig bad_rate = open_schedule();
  bad_rate.rate = 0.0;
  EXPECT_THROW((void)build_plan(small_zipf(), bad_rate, 1),
               std::invalid_argument);

  WorkloadConfig no_trace;
  no_trace.workload = Workload::Trace;
  EXPECT_THROW((void)build_plan(no_trace, open_schedule(), 1),
               std::invalid_argument);

  ScheduleConfig bad_ramp = open_schedule();
  bad_ramp.mode = Mode::Ramp;
  bad_ramp.ramp_start = 300.0;
  bad_ramp.ramp_step = -200.0;
  bad_ramp.ramp_steps = 3;  // last step would offer -100/s
  EXPECT_THROW((void)build_plan(small_zipf(), bad_ramp, 1),
               std::invalid_argument);

  WorkloadConfig bad_flash = small_zipf();
  bad_flash.workload = Workload::Flash;
  bad_flash.flash_start_frac = 0.8;
  bad_flash.flash_duration_frac = 0.5;  // window overruns the measure period
  EXPECT_THROW((void)build_plan(bad_flash, open_schedule(), 1),
               std::invalid_argument);
}

TEST(LoadgenPlan, NameParsersRoundTrip) {
  EXPECT_EQ(parse_workload("zipf"), Workload::Zipf);
  EXPECT_EQ(parse_mode("ramp"), Mode::Ramp);
  EXPECT_EQ(parse_arrival("fixed"), Arrival::Fixed);
  EXPECT_STREQ(workload_name(Workload::Flash), "flash");
  EXPECT_STREQ(mode_name(Mode::Closed), "closed");
  EXPECT_STREQ(arrival_name(Arrival::Poisson), "poisson");
  EXPECT_THROW((void)parse_workload("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_mode("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_arrival("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::loadgen
