// SpanStore: bounded two-tier retention, deterministic sampling, shard
// concurrency, and the Span -> store recording rules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/trace_stitch.hpp"

namespace cachecloud::obs {
namespace {

[[nodiscard]] SpanRecord make_record(std::uint64_t trace_id,
                                     std::uint64_t duration_us,
                                     bool error = false) {
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = next_span_id();
  record.node = "cache-0";
  record.name = "get";
  record.start_us = 1000;
  record.end_us = 1000 + duration_us;
  record.error = error;
  return record;
}

TEST(SpanStoreTest, RetainsAndSnapshotsRecords) {
  SpanStore store;
  store.add(make_record(1, 10));
  store.add(make_record(2, 20));
  EXPECT_EQ(store.size(), 2u);
  const std::vector<SpanRecord> spans = store.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(store.size(), 2u);  // snapshot is non-destructive
  std::set<std::uint64_t> traces;
  for (const SpanRecord& span : spans) traces.insert(span.trace_id);
  EXPECT_EQ(traces, (std::set<std::uint64_t>{1, 2}));
}

TEST(SpanStoreTest, DropsTraceIdZero) {
  SpanStore store;
  store.add(make_record(0, 10));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.added(), 0u);
}

TEST(SpanStoreTest, BoundedRetentionEvictsOldestPerRing) {
  SpanStoreConfig config;
  config.capacity = 64;
  config.shards = 4;
  SpanStore store(config);
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    store.add(make_record(i, 10));
  }
  EXPECT_EQ(store.added(), 1000u);
  EXPECT_LE(store.size(), 64u);
  EXPECT_EQ(store.evicted(), 1000u - store.size());
  // Survivors skew recent: the very first records are long gone.
  for (const SpanRecord& span : store.snapshot()) {
    EXPECT_GT(span.trace_id, 64u);
  }
}

TEST(SpanStoreTest, TailRetainedSpansSurviveRecentFlood) {
  SpanStoreConfig config;
  config.capacity = 64;
  config.shards = 1;  // single ring per tier makes the bound exact
  config.slow_threshold_sec = 0.050;
  SpanStore store(config);
  // Two interesting spans: one errored, one slow (>= 50ms).
  store.add(make_record(7, 10, /*error=*/true));
  store.add(make_record(8, 60'000));
  // A flood of fast, sampled spans fills the recent ring many times over.
  for (std::uint64_t i = 100; i < 1100; ++i) {
    store.add(make_record(i, 10));
  }
  bool saw_error = false;
  bool saw_slow = false;
  for (const SpanRecord& span : store.snapshot()) {
    if (span.trace_id == 7) saw_error = true;
    if (span.trace_id == 8) saw_slow = true;
  }
  EXPECT_TRUE(saw_error) << "errored span evicted by fast-span flood";
  EXPECT_TRUE(saw_slow) << "slow span evicted by fast-span flood";
}

TEST(SpanStoreTest, DrainClearsTheStore) {
  SpanStore store;
  store.add(make_record(1, 10));
  store.add(make_record(2, 10, /*error=*/true));
  const std::vector<SpanRecord> drained = store.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.snapshot().empty());
}

TEST(SpanStoreTest, ConcurrentAddsAcrossShards) {
  SpanStoreConfig config;
  config.capacity = 1024;
  config.shards = 8;
  SpanStore store(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<std::uint64_t> next{1};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = next.fetch_add(1);
        store.add(make_record(id, i % 97 == 0 ? 60'000 : 10));
      }
      (void)store.snapshot();  // concurrent readers must be safe too
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(store.added(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_LE(store.size(), 2u * config.capacity);
  EXPECT_EQ(store.added() - store.evicted(), store.size());
}

TEST(SampleTraceTest, BoundaryProbabilities) {
  for (std::uint64_t id : {1ull, 42ull, 0x9e3779b97f4a7c15ull}) {
    EXPECT_FALSE(sample_trace(id, 0.0));
    EXPECT_FALSE(sample_trace(id, -1.0));
    EXPECT_TRUE(sample_trace(id, 1.0));
    EXPECT_TRUE(sample_trace(id, 2.0));
  }
  EXPECT_FALSE(sample_trace(0, 1.0)) << "trace id 0 is never sampled";
}

TEST(SampleTraceTest, DeterministicAndRoughlyProportional) {
  int sampled = 0;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    const bool first = sample_trace(id, 0.25);
    EXPECT_EQ(first, sample_trace(id, 0.25)) << "verdict must be pure";
    if (first) ++sampled;
  }
  EXPECT_GT(sampled, 2000);
  EXPECT_LT(sampled, 3000);
}

// ---- Span -> store integration ------------------------------------------

TEST(SpanRecordingTest, SampledSpanIsRecordedWithTagsAndLinks) {
  SpanStore store;
  const std::uint64_t trace_id = next_trace_id();
  std::uint64_t parent_id = 0;
  {
    Span parent(SpanContext{trace_id, 0, true}, "get", &store, "cache-0");
    parent.tag("url", "/doc1");
    parent_id = parent.span_id();
    ASSERT_NE(parent_id, 0u);
    Span child(parent.child_context(), "LookupReq", &store, "cache-1");
    EXPECT_TRUE(child.enabled());
  }
  const std::vector<SpanRecord> spans = store.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id);
    if (span.name == "get") {
      EXPECT_EQ(span.parent_span_id, 0u);
      EXPECT_EQ(span.node, "cache-0");
      ASSERT_EQ(span.tags.size(), 1u);
      EXPECT_EQ(span.tags[0].first, "url");
      EXPECT_EQ(span.tags[0].second, "/doc1");
    } else {
      EXPECT_EQ(span.name, "LookupReq");
      EXPECT_EQ(span.parent_span_id, parent_id);
      EXPECT_EQ(span.node, "cache-1");
    }
  }
}

TEST(SpanRecordingTest, UnsampledFastSpanIsDropped) {
  SpanStore store;
  { Span span(SpanContext{next_trace_id(), 0, false}, "get", &store, "n"); }
  EXPECT_EQ(store.size(), 0u);
}

TEST(SpanRecordingTest, UnsampledErroredSpanIsRetained) {
  SpanStore store;
  {
    Span span(SpanContext{next_trace_id(), 0, false}, "get", &store, "n");
    span.mark_error();
  }
  const std::vector<SpanRecord> spans = store.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].error);
}

TEST(SpanRecordingTest, UnsampledSlowSpanIsRetained) {
  SpanStoreConfig config;
  config.slow_threshold_sec = 0.0;  // every finished span counts as slow
  SpanStore store(config);
  { Span span(SpanContext{next_trace_id(), 0, false}, "get", &store, "n"); }
  EXPECT_EQ(store.size(), 1u);
}

TEST(SpanRecordingTest, UntracedSpanStaysDisabledAndUnrecorded) {
  SpanStore store;
  {
    Span span(SpanContext{0, 0, false}, "get", &store, "n");
    EXPECT_EQ(span.span_id(), 0u);
    span.tag("k", "v");  // must be a no-op, not a crash
  }
  EXPECT_EQ(store.size(), 0u);
}

// ---- stitching ----------------------------------------------------------

TEST(TraceStitchTest, BuildsRootedTreeFromSpans) {
  const std::uint64_t trace_id = 77;
  SpanRecord root = make_record(trace_id, 500);
  root.name = "get";
  SpanRecord child = make_record(trace_id, 100);
  child.name = "LookupReq";
  child.node = "cache-1";
  child.parent_span_id = root.span_id;
  child.start_us = root.start_us + 50;
  child.end_us = child.start_us + 100;
  SpanRecord other = make_record(99, 10);

  const std::vector<TraceTree> traces =
      stitch_traces({child, other, root});
  ASSERT_EQ(traces.size(), 2u);
  // Slowest-first: the 500us trace leads.
  const TraceTree& tree = traces[0];
  EXPECT_EQ(tree.trace_id, trace_id);
  ASSERT_EQ(tree.spans.size(), 2u);
  ASSERT_TRUE(tree.rooted());
  EXPECT_EQ(tree.spans[tree.root].name, "get");
  ASSERT_EQ(tree.children[tree.root].size(), 1u);
  EXPECT_EQ(tree.spans[tree.children[tree.root][0]].name, "LookupReq");
  EXPECT_EQ(tree.duration_us(), 500u);

  const std::string chrome = to_chrome_trace(traces);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"LookupReq\""), std::string::npos);
  const std::string report = slowest_report(traces, 10);
  EXPECT_NE(report.find("get"), std::string::npos);
}

// ---- orphan handling ----------------------------------------------------
//
// A span whose parent hop was never scraped (sampled out, evicted from the
// ring, node unreachable) must still appear in every export — dropping it
// would silently hide the very hop a post-mortem is looking for.

TEST(TraceStitchTest, LoneOrphanBecomesItsOwnRoot) {
  SpanRecord orphan = make_record(42, 120);
  orphan.name = "LookupReq";
  orphan.parent_span_id = next_span_id();  // parent never scraped

  const std::vector<TraceTree> traces = stitch_traces({orphan});
  ASSERT_EQ(traces.size(), 1u);
  const TraceTree& tree = traces[0];
  ASSERT_EQ(tree.spans.size(), 1u);
  ASSERT_TRUE(tree.rooted());  // sole span: orphan is promoted to root
  EXPECT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.parent[0], kNoSpan);
  EXPECT_EQ(tree.duration_us(), 120u);
  EXPECT_NE(to_chrome_trace(traces).find("\"LookupReq\""),
            std::string::npos);
  EXPECT_NE(slowest_report(traces, 10).find("LookupReq"), std::string::npos);
}

TEST(TraceStitchTest, OrphanBesideRealRootIsKeptNotDropped) {
  SpanRecord root = make_record(42, 500);
  root.name = "get";
  SpanRecord orphan = make_record(42, 80);
  orphan.name = "FetchReq";
  orphan.node = "cache-2";
  orphan.parent_span_id = next_span_id();  // missing middle hop
  orphan.start_us = root.start_us + 100;
  orphan.end_us = orphan.start_us + 80;

  const std::vector<TraceTree> traces = stitch_traces({orphan, root});
  ASSERT_EQ(traces.size(), 1u);
  const TraceTree& tree = traces[0];
  ASSERT_EQ(tree.spans.size(), 2u);  // the orphan survives stitching
  // Two parentless spans: the tree reports itself unrooted rather than
  // guessing which one owns the trace.
  EXPECT_FALSE(tree.rooted());
  EXPECT_EQ(tree.parent[0], kNoSpan);
  EXPECT_EQ(tree.parent[1], kNoSpan);
  EXPECT_TRUE(tree.children[0].empty());
  // Duration still spans the union of both fragments.
  EXPECT_EQ(tree.duration_us(), 500u);
  // Both fragments are visible in the exports.
  const std::string chrome = to_chrome_trace(traces);
  EXPECT_NE(chrome.find("\"get\""), std::string::npos);
  EXPECT_NE(chrome.find("\"FetchReq\""), std::string::npos);
  const std::string report = slowest_report(traces, 10);
  EXPECT_NE(report.find("get"), std::string::npos);
  EXPECT_NE(report.find("FetchReq"), std::string::npos);
}

TEST(TraceStitchTest, OrphanKeepsItsOwnScrapedChildren) {
  // grandparent (never scraped) -> orphan -> child: the child must still
  // hang off the orphan so the surviving subtree keeps its shape.
  SpanRecord orphan = make_record(7, 200);
  orphan.name = "LookupReq";
  orphan.parent_span_id = next_span_id();
  SpanRecord child = make_record(7, 50);
  child.name = "FetchReq";
  child.parent_span_id = orphan.span_id;
  child.start_us = orphan.start_us + 20;
  child.end_us = child.start_us + 50;

  const std::vector<TraceTree> traces = stitch_traces({child, orphan});
  ASSERT_EQ(traces.size(), 1u);
  const TraceTree& tree = traces[0];
  ASSERT_EQ(tree.spans.size(), 2u);
  ASSERT_TRUE(tree.rooted());  // exactly one parentless span remains
  EXPECT_EQ(tree.spans[tree.root].name, "LookupReq");
  ASSERT_EQ(tree.children[tree.root].size(), 1u);
  EXPECT_EQ(tree.spans[tree.children[tree.root][0]].name, "FetchReq");
}

TEST(TraceStitchTest, SelfParentingSpanIsTreatedAsRoot) {
  // A corrupt record claiming itself as parent must not create a cycle.
  SpanRecord span = make_record(9, 30);
  span.parent_span_id = span.span_id;

  const std::vector<TraceTree> traces = stitch_traces({span});
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_TRUE(traces[0].rooted());
  EXPECT_EQ(traces[0].parent[0], kNoSpan);
  EXPECT_TRUE(traces[0].children[0].empty());
}

}  // namespace
}  // namespace cachecloud::obs
