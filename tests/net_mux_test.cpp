// Pipelining-specific transport tests: out-of-order response matching,
// request-id wraparound, deep pipelines under injected faults, and
// shutdown with calls still in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fault_injector.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"

namespace cachecloud::net {
namespace {

using namespace std::chrono_literals;

// A handler that parks requests of type kHold until released, so tests can
// force replies to complete out of order and keep calls in flight on cue.
class HoldHandler {
 public:
  static constexpr std::uint16_t kHold = 100;

  Frame operator()(const Frame& request) {
    if (request.type == kHold) {
      std::unique_lock<std::mutex> lock(mu_);
      ++held_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    Frame reply = request;
    reply.type = static_cast<std::uint16_t>(request.type + 1);
    return reply;
  }

  // Blocks until `n` requests are parked inside the handler.
  void wait_held(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return held_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int held_ = 0;
  bool released_ = false;
};

TEST(MuxTest, ResponsesMatchOutOfOrder) {
  auto hold = std::make_shared<HoldHandler>();
  EventServer server(0, [hold](const Frame& f) { return (*hold)(f); });
  MuxClient client(server.port());

  // First request parks in the handler; the second overtakes it.
  Frame slow;
  slow.type = HoldHandler::kHold;
  slow.payload = {1};
  const std::uint64_t slow_ticket = client.begin(slow);
  hold->wait_held(1);

  Frame fast;
  fast.type = 5;
  fast.payload = {2};
  const std::uint64_t fast_ticket = client.begin(fast);
  EXPECT_NE(slow_ticket, fast_ticket);
  EXPECT_EQ(client.outstanding(), 2u);

  Frame fast_reply;
  client.finish(fast_ticket, fast_reply);  // completes while slow is parked
  EXPECT_EQ(fast_reply.type, 6);
  EXPECT_EQ(fast_reply.payload, fast.payload);
  EXPECT_EQ(client.outstanding(), 1u);

  hold->release();
  Frame slow_reply;
  client.finish(slow_ticket, slow_reply);
  EXPECT_EQ(slow_reply.type, HoldHandler::kHold + 1);
  EXPECT_EQ(slow_reply.payload, slow.payload);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_GE(client.peak_outstanding(), 2u);
}

TEST(MuxTest, TicketsAreSingleUse) {
  EventServer server(0, [](const Frame& f) { return f; });
  MuxClient client(server.port());
  Frame request;
  request.type = 1;
  const std::uint64_t ticket = client.begin(request);
  Frame reply;
  client.finish(ticket, reply);
  EXPECT_THROW(client.finish(ticket, reply), NetError);
}

TEST(MuxTest, RequestIdWrapSkipsZeroAndStaysCorrect) {
  EventServer server(0, [](const Frame& f) {
    Frame reply = f;
    reply.type = static_cast<std::uint16_t>(f.type + 1);
    return reply;
  });
  MuxClient client(server.port());
  // Plant the counter at the edge: the next ids are UINT64_MAX, then the
  // wrap must skip 0 (reserved = untagged) and continue from 1.
  client.set_next_request_id(UINT64_MAX);
  for (int i = 0; i < 16; ++i) {
    Frame request;
    request.type = static_cast<std::uint16_t>(i);
    const Frame reply = client.call(request);
    EXPECT_EQ(reply.type, i + 1);
  }
}

TEST(MuxTest, WrappedIdSkipsOneStillInFlight) {
  auto hold = std::make_shared<HoldHandler>();
  EventServer server(0, [hold](const Frame& f) { return (*hold)(f); });
  MuxClient client(server.port());

  // Occupy id 1 with a parked call, then wrap the counter into it: the
  // allocator must hand the next call id 2, not a duplicate.
  client.set_next_request_id(1);
  Frame parked;
  parked.type = HoldHandler::kHold;
  const std::uint64_t parked_ticket = client.begin(parked);
  EXPECT_EQ(parked_ticket, 1u);
  hold->wait_held(1);

  client.set_next_request_id(UINT64_MAX);
  Frame request;
  request.type = 7;
  const std::uint64_t ticket = client.begin(request);
  EXPECT_NE(ticket, parked_ticket);
  Frame reply;
  client.finish(ticket, reply);
  EXPECT_EQ(reply.type, 8);

  hold->release();
  client.finish(parked_ticket, reply);
  EXPECT_EQ(reply.type, HoldHandler::kHold + 1);
}

TEST(MuxTest, WindowFullTimesOut) {
  auto hold = std::make_shared<HoldHandler>();
  EventServer server(0, [hold](const Frame& f) { return (*hold)(f); });
  // Tiny window (2) and a short timeout so the over-limit begin() fails
  // fast instead of hanging the test.
  MuxClient client(server.port(), /*timeout_sec=*/0.3, nullptr, nullptr,
                   nullptr, /*max_outstanding=*/2);

  Frame parked;
  parked.type = HoldHandler::kHold;
  (void)client.begin(parked);
  (void)client.begin(parked);
  hold->wait_held(2);
  EXPECT_THROW((void)client.begin(parked), NetError);  // window full
  // Let the parked handlers drain before the server tears down; the
  // client destructor fails the abandoned slots.
  hold->release();
}

TEST(MuxTest, WindowFreesWhenCallsFinish) {
  auto hold = std::make_shared<HoldHandler>();
  EventServer server(0, [hold](const Frame& f) { return (*hold)(f); });
  MuxClient client(server.port(), /*timeout_sec=*/5.0, nullptr, nullptr,
                   nullptr, /*max_outstanding=*/2);

  Frame parked;
  parked.type = HoldHandler::kHold;
  const std::uint64_t t1 = client.begin(parked);
  const std::uint64_t t2 = client.begin(parked);
  hold->wait_held(2);

  // A third begin() blocks on the window until a slot is finished.
  std::atomic<bool> third_done{false};
  std::thread blocked([&] {
    Frame request;
    request.type = 7;
    const std::uint64_t t3 = client.begin(request);
    Frame reply;
    client.finish(t3, reply);
    EXPECT_EQ(reply.type, 8);
    third_done = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_done.load());  // still parked on the full window

  hold->release();
  Frame reply;
  client.finish(t1, reply);  // frees a slot; the blocked begin proceeds
  client.finish(t2, reply);
  blocked.join();
  EXPECT_TRUE(third_done.load());
}

TEST(MuxTest, ManyOutstandingUnderInjectedDropsAndResets) {
  // Deep pipelines from many threads against a server whose replies are
  // randomly dropped or reset (seeded, so the sequence is reproducible).
  // Every call must either succeed with the right echo or fail with a
  // NetError — no wrong-reply cross-wiring, no hangs, and the harness
  // keeps reconnecting like the node layer's pooled clients do.
  FaultInjector faults(0xC0FFEE);
  EventServer server(
      0,
      [](const Frame& f) {
        Frame reply = f;
        reply.type = static_cast<std::uint16_t>(f.type + 1);
        return reply;
      },
      nullptr, &faults);
  FaultProfile profile;
  profile.frame_drop = 0.02;
  profile.reset = 0.01;
  faults.set_profile(server.port(), profile);

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 150;
  std::mutex client_mu;
  auto client = std::make_shared<MuxClient>(server.port(), 2.0, nullptr,
                                            &faults);
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::atomic<int> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::shared_ptr<MuxClient> mine;
        {
          std::lock_guard<std::mutex> lock(client_mu);
          mine = client;
        }
        Frame request;
        request.type = static_cast<std::uint16_t>((t * 1000 + i) % 60000);
        request.payload.assign(static_cast<std::size_t>(i % 64),
                               static_cast<std::uint8_t>(t));
        try {
          Frame reply;
          mine->call_into(request, reply);
          if (reply.type != request.type + 1 ||
              reply.payload != request.payload) {
            ++wrong;
          } else {
            ++ok;
          }
        } catch (const NetError&) {
          ++failed;
          // Dead client: replace it (identity check so only one thread
          // pays for the reconnect), exactly like the node pools do.
          std::lock_guard<std::mutex> lock(client_mu);
          if (client == mine) {
            try {
              client = std::make_shared<MuxClient>(server.port(), 2.0,
                                                   nullptr, &faults);
            } catch (const NetError&) {
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok.load() + failed.load(), kThreads * kCallsPerThread);
  // The seeded profile guarantees both some successes and some injected
  // failures, so both paths are genuinely exercised.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(failed.load(), 0);
  EXPECT_GT(faults.disruptions(), 0u);
}

TEST(MuxTest, InjectedDropFailsOnlyThatCall) {
  FaultInjector faults(42);
  EventServer server(0, [](const Frame& f) { return f; });
  MuxClient client(server.port(), 5.0, nullptr, &faults);

  // A dropped *request* never reaches the wire: the call fails immediately
  // and the connection stays healthy for the next one.
  FaultProfile all_drop;
  all_drop.frame_drop = 1.0;
  faults.set_profile(server.port(), all_drop);
  Frame request;
  request.type = 9;
  EXPECT_THROW((void)client.call(request), NetError);

  faults.clear_profile(server.port());
  EXPECT_EQ(client.call(request).type, 9);
}

TEST(MuxTest, CleanShutdownWithRequestsInFlight) {
  auto hold = std::make_shared<HoldHandler>();
  auto server = std::make_unique<EventServer>(
      0, [hold](const Frame& f) { return (*hold)(f); });
  auto client = std::make_unique<MuxClient>(server->port());

  // Park several calls server-side, then tear both endpoints down under
  // them. Every waiter must unblock with a NetError — no hangs, no
  // crashes — and destruction must complete.
  constexpr int kInFlight = 6;
  std::vector<std::thread> callers;
  std::atomic<int> unblocked{0};
  for (int i = 0; i < kInFlight; ++i) {
    callers.emplace_back([&] {
      Frame request;
      request.type = HoldHandler::kHold;
      try {
        (void)client->call(request);
      } catch (const NetError&) {
      }
      ++unblocked;
    });
  }
  hold->wait_held(kInFlight);
  EXPECT_EQ(client->outstanding(), static_cast<std::size_t>(kInFlight));

  client->close();  // fails all outstanding calls, stops the reader
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(unblocked.load(), kInFlight);

  // Server-side: handlers are still parked in the worker pool. Releasing
  // them during stop must not crash even though the peer is gone.
  hold->release();
  server->stop();
  client.reset();
  server.reset();
}

TEST(MuxTest, TimeoutAbandonsSlotButConnectionSurvives) {
  auto hold = std::make_shared<HoldHandler>();
  EventServer server(0, [hold](const Frame& f) { return (*hold)(f); });
  MuxClient client(server.port(), /*timeout_sec=*/0.2);

  Frame parked;
  parked.type = HoldHandler::kHold;
  EXPECT_THROW((void)client.call(parked), NetError);  // times out

  // The late reply (released after the timeout) is discarded by the
  // reader; the connection keeps serving new calls.
  hold->release();
  Frame request;
  request.type = 3;
  EXPECT_EQ(client.call(request).type, 4);
}

}  // namespace
}  // namespace cachecloud::net
