#include "util/fs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace cachecloud::util {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- crc32

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(std::string_view("")), 0x00000000u);
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("The quick brown fox jumps over the lazy "
                                   "dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "manifest line: put 42 obj-7.dat /doc/7";
  const std::uint32_t whole = crc32(data);
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < data.size(); i += 5) {
    state = crc32(data.data() + i, std::min<std::size_t>(5, data.size() - i),
                  state);
  }
  EXPECT_EQ(state, whole);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string data(64, 'a');
  const std::uint32_t clean = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), clean);
}

TEST(Crc32Test, VectorOverloadMatchesStringView) {
  const std::string s = "payload bytes";
  const std::vector<std::uint8_t> v(s.begin(), s.end());
  EXPECT_EQ(crc32(v), crc32(std::string_view(s)));
}

// --------------------------------------------------- atomic_write_file

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cc_fs_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_all(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
};

TEST_F(AtomicWriteTest, CreatesNewFile) {
  const std::string path = (dir_ / "out.json").string();
  atomic_write_file(path, "{\"a\":1}\n");
  EXPECT_EQ(read_all(path), "{\"a\":1}\n");
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(AtomicWriteTest, ReplacesExistingContentCompletely) {
  const std::string path = (dir_ / "out.txt").string();
  atomic_write_file(path, std::string(4096, 'x'));
  atomic_write_file(path, "short");
  EXPECT_EQ(read_all(path), "short");
}

TEST_F(AtomicWriteTest, EmptyContentIsValid) {
  const std::string path = (dir_ / "empty").string();
  atomic_write_file(path, "");
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), 0u);
}

TEST_F(AtomicWriteTest, ThrowsOnUnwritableDirectoryAndLeavesTargetAlone) {
  const std::string path = (dir_ / "no" / "such" / "dir" / "f").string();
  EXPECT_THROW(atomic_write_file(path, "x"), std::runtime_error);
  const std::string existing = (dir_ / "keep.txt").string();
  atomic_write_file(existing, "original");
  // A failed write elsewhere must not disturb unrelated files.
  EXPECT_EQ(read_all(existing), "original");
}

TEST_F(AtomicWriteTest, BinaryContentRoundTrips) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  const std::string path = (dir_ / "blob.bin").string();
  atomic_write_file(path, blob);
  EXPECT_EQ(read_all(path), blob);
}

}  // namespace
}  // namespace cachecloud::util
