// Smoke tests of the CLI tools: library-level flows (generation, file IO,
// resampling — the same paths tools/tracegen.cpp and
// tools/cachecloud_sim.cpp drive) plus the cachecloud_tracecat binary
// itself, invoked as a subprocess against no nodes at all.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace cachecloud {
namespace {

// Exit code of `TRACECAT_BIN args`, or -1 if the shell-out itself failed.
[[nodiscard]] int run_tracecat(const std::string& args) {
  const std::string command =
      std::string(TRACECAT_BIN) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  return status < 0 ? -1 : WEXITSTATUS(status);
}

TEST(ToolsFlowTest, GenerateWriteReadResampleSimulate) {
  // tracegen --kind=zipf --out=...
  trace::ZipfTraceConfig gen;
  gen.num_docs = 200;
  gen.num_caches = 4;
  gen.duration_sec = 120.0;
  gen.requests_per_sec = 10.0;
  gen.updates_per_minute = 30.0;
  const trace::Trace generated = trace::generate_zipf_trace(gen);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tools_smoke.trace").string();
  trace::write_trace_file(path, generated);

  // tracegen --stats
  const trace::TraceStats stats =
      trace::compute_stats(trace::read_trace_file(path));
  EXPECT_EQ(stats.num_docs, 200u);
  EXPECT_GT(stats.requests, 0u);

  // tracegen --in=... --upd-per-min=120
  const trace::Trace resampled =
      trace::read_trace_file(path).with_update_rate(120.0, 3);
  trace::write_trace_file(path, resampled);
  EXPECT_NEAR(trace::compute_stats(resampled).updates_per_minute, 120.0,
              25.0);

  // cachecloud_sim --trace=... --hashing=dynamic --placement=utility
  const trace::Trace loaded = trace::read_trace_file(path);
  core::CloudConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.placement = "utility";
  core::CacheCloud cloud(config, loaded);
  const sim::SimResult result = sim::run_simulation(cloud, loaded);
  EXPECT_EQ(result.metrics.requests, loaded.request_count());

  std::filesystem::remove(path);
}

TEST(TracecatSmokeTest, HelpExitsZero) {
  EXPECT_EQ(run_tracecat("--help"), 0);
}

TEST(TracecatSmokeTest, UnknownFlagIsAUsageError) {
  EXPECT_EQ(run_tracecat("--no-such-flag"), 2);
}

TEST(TracecatSmokeTest, ZeroNodesStillWritesAValidEmptyTrace) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tracecat_empty.json").string();
  // No --ports at all: nothing to scrape, but the artifact must still be
  // a valid (empty) Chrome trace, and --validate must accept it.
  ASSERT_EQ(run_tracecat("--out " + path), 0);
  EXPECT_EQ(run_tracecat("--validate " + path), 0);
  std::filesystem::remove(path);
}

TEST(TracecatSmokeTest, ValidateRejectsMalformedArtifacts) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tracecat_bad.json").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"not\": \"a trace\"}";
  }
  EXPECT_EQ(run_tracecat("--validate " + path), 1);
  EXPECT_EQ(run_tracecat("--validate " + path + ".does-not-exist"), 1);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cachecloud
