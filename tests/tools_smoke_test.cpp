// Smoke tests of the CLI tools' underlying flows (generation, file IO,
// resampling) — the same paths tools/tracegen.cpp and
// tools/cachecloud_sim.cpp drive, exercised as a library to keep the test
// hermetic.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/cloud.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace cachecloud {
namespace {

TEST(ToolsFlowTest, GenerateWriteReadResampleSimulate) {
  // tracegen --kind=zipf --out=...
  trace::ZipfTraceConfig gen;
  gen.num_docs = 200;
  gen.num_caches = 4;
  gen.duration_sec = 120.0;
  gen.requests_per_sec = 10.0;
  gen.updates_per_minute = 30.0;
  const trace::Trace generated = trace::generate_zipf_trace(gen);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "tools_smoke.trace").string();
  trace::write_trace_file(path, generated);

  // tracegen --stats
  const trace::TraceStats stats =
      trace::compute_stats(trace::read_trace_file(path));
  EXPECT_EQ(stats.num_docs, 200u);
  EXPECT_GT(stats.requests, 0u);

  // tracegen --in=... --upd-per-min=120
  const trace::Trace resampled =
      trace::read_trace_file(path).with_update_rate(120.0, 3);
  trace::write_trace_file(path, resampled);
  EXPECT_NEAR(trace::compute_stats(resampled).updates_per_minute, 120.0,
              25.0);

  // cachecloud_sim --trace=... --hashing=dynamic --placement=utility
  const trace::Trace loaded = trace::read_trace_file(path);
  core::CloudConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.placement = "utility";
  core::CacheCloud cloud(config, loaded);
  const sim::SimResult result = sim::run_simulation(cloud, loaded);
  EXPECT_EQ(result.metrics.requests, loaded.request_count());

  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cachecloud
