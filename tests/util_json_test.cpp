#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cachecloud::util {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const JsonValue doc = JsonValue::parse(
      R"({"name": "bench", "ok": true, "skip": null,
          "rate": 2e3, "ratio": -0.5,
          "phases": [{"p99": 0.00125}, {"p99": 0.002}]})");
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "bench");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("skip").is_null());
  EXPECT_DOUBLE_EQ(doc.number_at("rate"), 2000.0);
  EXPECT_DOUBLE_EQ(doc.number_at("ratio"), -0.5);
  const auto& phases = doc.at("phases").as_array();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[0].number_at("p99"), 0.00125);
}

TEST(Json, StringEscapes) {
  const JsonValue doc =
      JsonValue::parse(R"({"s": "a\"b\\c\nd\tAé"})");
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(Json, FindAndAtSemantics) {
  const JsonValue doc = JsonValue::parse(R"({"x": 1})");
  EXPECT_NE(doc.find("x"), nullptr);
  EXPECT_EQ(doc.find("y"), nullptr);
  EXPECT_THROW((void)doc.at("y"), std::invalid_argument);
  // find on a non-object is a safe nullptr, at throws.
  EXPECT_EQ(doc.at("x").find("z"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 1,}"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("[1, 2] trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"),
               std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("1.2.3"), std::invalid_argument);
}

TEST(Json, KindMismatchThrows) {
  const JsonValue doc = JsonValue::parse(R"({"n": 5})");
  EXPECT_THROW((void)doc.at("n").as_string(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("n").as_array(), std::invalid_argument);
  EXPECT_THROW((void)doc.as_number(), std::invalid_argument);
}

TEST(Json, DuplicateKeysResolveToFirst) {
  const JsonValue doc = JsonValue::parse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(doc.number_at("k"), 1.0);
}

}  // namespace
}  // namespace cachecloud::util
