// Beacon-point failover with lazily replicated lookup records (§2.3's
// resilience extension), over real loopback TCP.
#include <gtest/gtest.h>

#include <string>

#include "net/fault_injector.hpp"
#include "node/cluster.hpp"

namespace cachecloud::node {
namespace {

NodeConfig config_4() {
  NodeConfig config;
  config.num_caches = 4;
  config.ring_size = 2;
  config.irh_gen = 100;
  config.placement = "adhoc";
  return config;
}

TEST(NodeFailoverTest, ReplicaSyncMirrorsRecordsToRingPeer) {
  Cluster cluster(config_4());
  for (int i = 0; i < 40; ++i) {
    cluster.origin().add_document("/d" + std::to_string(i), 64);
    (void)cluster.cache(0).get("/d" + std::to_string(i));
  }
  std::size_t replicas_before = 0;
  for (NodeId id = 0; id < 4; ++id) {
    replicas_before += cluster.cache(id).replica_records();
  }
  EXPECT_EQ(replicas_before, 0u);

  std::size_t records_total = 0;
  for (NodeId id = 0; id < 4; ++id) {
    cluster.cache(id).sync_replicas();
    records_total += cluster.cache(id).directory_records();
  }
  // Ring size 2: every record is mirrored to exactly one peer.
  std::size_t replicas_after = 0;
  for (NodeId id = 0; id < 4; ++id) {
    replicas_after += cluster.cache(id).replica_records();
  }
  EXPECT_EQ(replicas_after, records_total);
}

TEST(NodeFailoverTest, HeirServesLookupsAfterBeaconCrash) {
  Cluster cluster(config_4());
  for (int i = 0; i < 60; ++i) {
    cluster.origin().add_document("/d" + std::to_string(i), 64);
  }
  // Cache 2 and 3 hold copies; node 0 and 1 act as beacons for ring 0.
  for (int i = 0; i < 60; ++i) {
    (void)cluster.cache(2).get("/d" + std::to_string(i));
    (void)cluster.cache(3).get("/d" + std::to_string(i));
  }
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();

  // Crash node 1 (a beacon of ring 0; also a holder) and fail it over.
  const std::size_t heir_records_before =
      cluster.cache(0).directory_records();
  cluster.crash(1);
  const auto summary = cluster.origin().handle_node_failure(1);
  EXPECT_EQ(summary.ring, 0u);
  EXPECT_EQ(summary.heir, 0u);

  // The heir's directory grew by the promoted replicas.
  EXPECT_GT(cluster.cache(0).directory_records(), heir_records_before);

  // Every document still resolves, and documents whose beacon was the dead
  // node are answered by the heir from replicas — no ring-0 document needs
  // an origin refetch, because live holders (2 and 3) are still listed.
  const std::uint64_t fetches_before = cluster.origin().origin_fetches();
  for (int i = 0; i < 60; ++i) {
    const auto target =
        cluster.cache(0).ring_view().resolve("/d" + std::to_string(i));
    EXPECT_NE(target.beacon, 1u) << "doc " << i;
    // Request at a cache that does not hold the doc? caches 2/3 hold all.
    const auto result = cluster.cache(2).get("/d" + std::to_string(i));
    EXPECT_FALSE(result.body.empty());
  }
  EXPECT_EQ(cluster.origin().origin_fetches(), fetches_before);
}

TEST(NodeFailoverTest, PromotedRecordsDropDeadHolder) {
  Cluster cluster(config_4());
  cluster.origin().add_document("/solo", 64);
  // Only node 1 holds the doc.
  (void)cluster.cache(1).get("/solo");
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();

  cluster.crash(1);
  (void)cluster.origin().handle_node_failure(1);

  // A request elsewhere must not chase the dead holder: the promoted
  // record dropped node 1, so this is a clean origin fetch.
  const auto result = cluster.cache(2).get("/solo");
  EXPECT_EQ(result.source, CacheNode::GetResult::Source::Origin);
  EXPECT_EQ(result.body, OriginNode::make_body("/solo", 1, 64));
}

TEST(NodeFailoverTest, UpdatesFlowThroughHeirAfterFailover) {
  Cluster cluster(config_4());
  for (int i = 0; i < 30; ++i) {
    cluster.origin().add_document("/u" + std::to_string(i), 48);
    (void)cluster.cache(2).get("/u" + std::to_string(i));
  }
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();
  cluster.crash(0);
  (void)cluster.origin().handle_node_failure(0);

  // Updates route to the new beacons and reach the surviving holder.
  for (int i = 0; i < 30; ++i) {
    const std::string url = "/u" + std::to_string(i);
    cluster.origin().publish_update(url);
    const auto result = cluster.cache(2).get(url);
    EXPECT_EQ(result.version, 2u) << url;
    EXPECT_EQ(result.source, CacheNode::GetResult::Source::Local) << url;
  }
}

TEST(NodeFailoverTest, AnnounceFailureLeavesSurvivorsConsistentThenCatchesUp) {
  net::FaultInjector faults(/*seed=*/3);
  NodeConfig config = config_4();
  config.fault_injector = &faults;
  config.auto_failover = false;
  Cluster cluster(config);
  for (int i = 0; i < 40; ++i) {
    cluster.origin().add_document("/a" + std::to_string(i), 64);
    (void)cluster.cache(2).get("/a" + std::to_string(i));
  }
  for (NodeId id = 0; id < 4; ++id) cluster.cache(id).sync_replicas();

  // Node 3 misses the failover announce: everything sent to its port is
  // dropped. The failover must still complete for the reachable survivors.
  net::FaultProfile drop_all;
  drop_all.frame_drop = 1.0;
  faults.set_profile(cluster.cache(3).port(), drop_all);
  cluster.crash(1);
  const auto summary = cluster.origin().handle_node_failure(1);
  EXPECT_EQ(summary.heir, 0u);
  EXPECT_GE(cluster.origin().metrics_snapshot().sum_of(
                "cachecloud_origin_announce_failures_total"),
            1.0);

  // Every ring view that heard the announce still partitions the whole
  // IrH space [0, irh_gen) contiguously.
  for (const NodeId at : {NodeId{0}, NodeId{2}}) {
    const RangeAnnounce view = cluster.cache(at).ring_view().snapshot();
    for (std::size_t ring = 0; ring < view.rings.size(); ++ring) {
      const auto& members = view.rings[ring];
      ASSERT_FALSE(members.empty());
      EXPECT_EQ(members.front().range.lo, 0u) << "node " << at;
      for (std::size_t i = 1; i < members.size(); ++i) {
        EXPECT_EQ(members[i].range.lo, members[i - 1].range.hi + 1)
            << "node " << at << " ring " << ring;
      }
      EXPECT_EQ(members.back().range.hi, config.irh_gen - 1)
          << "node " << at;
    }
  }

  // The skipped node catches up once it is reachable again.
  faults.clear_profile(cluster.cache(3).port());
  EXPECT_EQ(cluster.origin().retry_pending_announces(), 1u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NE(
        cluster.cache(3).ring_view().resolve("/a" + std::to_string(i)).beacon,
        1u)
        << "doc " << i;
  }
}

TEST(NodeFailoverTest, RejectsFailingLastRingMember) {
  NodeConfig config;
  config.num_caches = 2;
  config.ring_size = 1;  // two rings of one member each
  config.irh_gen = 50;
  Cluster cluster(config);
  cluster.crash(0);
  EXPECT_THROW((void)cluster.origin().handle_node_failure(0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::node
