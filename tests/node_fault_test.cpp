// Adversarial/fault-injection tests of the wire layer and node handlers:
// garbage frames, wrong message types, truncated payloads, oversized
// frames. A node must never crash or wedge on malformed input.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>

#include "net/event_loop.hpp"
#include "net/mux_client.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "node/protocol.hpp"

namespace cachecloud::node {
namespace {

NodeConfig tiny_config() {
  NodeConfig config;
  config.num_caches = 2;
  config.ring_size = 2;
  config.irh_gen = 50;
  return config;
}

TEST(NodeFaultTest, UnknownMessageTypeGetsNack) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.cache(0).port());
  net::Frame junk;
  junk.type = 999;
  junk.payload = {1, 2, 3};
  const Ack ack = Ack::decode(client.call(junk));
  EXPECT_FALSE(ack.ok);
  EXPECT_NE(ack.error.find("unsupported"), std::string::npos);
}

TEST(NodeFaultTest, TruncatedPayloadGetsNackNotCrash) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.cache(0).port());
  // A LookupReq frame whose string length prefix lies.
  net::Frame bad;
  bad.type = static_cast<std::uint16_t>(MsgType::LookupReq);
  bad.payload = {0xFF, 0x00, 0x00, 0x00};  // claims 255-byte string, has 0
  const Ack ack = Ack::decode(client.call(bad));
  EXPECT_FALSE(ack.ok);

  // The node still serves good requests on a fresh connection.
  cluster.origin().add_document("/ok", 32);
  const auto result = cluster.cache(0).get("/ok");
  EXPECT_FALSE(result.body.empty());
}

TEST(NodeFaultTest, RawGarbageBytesDropConnectionOnly) {
  Cluster cluster(tiny_config());
  {
    net::Socket raw = net::connect_local(cluster.cache(1).port());
    // Not even a valid frame header length — an oversized frame claim.
    const std::uint8_t garbage[6] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00};
    ::send(raw.fd(), garbage, sizeof(garbage), 0);
    // The server drops the connection; reading yields EOF or an error.
    EXPECT_THROW(
        {
          auto frame = raw.read_frame();
          if (!frame) throw net::NetError("clean close");  // acceptable too
        },
        net::NetError);
  }
  cluster.origin().add_document("/still-alive", 16);
  const auto result = cluster.cache(1).get("/still-alive");
  EXPECT_EQ(result.body.size(), 16u);
}

TEST(NodeFaultTest, StaleRangeAnnounceRejected) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.cache(0).port());
  // Announce with a gap in the partition: must be rejected.
  RangeAnnounce bad;
  bad.rings = {{RangeEntry{{0, 10}, 0}, RangeEntry{{20, 49}, 1}}};
  const Ack ack = Ack::decode(client.call(bad.encode()));
  EXPECT_FALSE(ack.ok);
  // And the node keeps resolving with its previous view.
  EXPECT_NO_THROW((void)cluster.cache(0).ring_view().resolve("/x"));
}

TEST(NodeFaultTest, WrongRingCountAnnounceRejected) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.cache(0).port());
  RangeAnnounce bad;
  bad.rings = {{RangeEntry{{0, 49}, 0}},
               {RangeEntry{{0, 49}, 1}}};  // two rings, cluster has one
  const Ack ack = Ack::decode(client.call(bad.encode()));
  EXPECT_FALSE(ack.ok);
}

TEST(NodeFaultTest, FetchForUnknownUrlSaysNotFound) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.cache(0).port());
  FetchReq req;
  req.url = "/never-heard-of-it";
  const FetchResp resp = FetchResp::decode(client.call(req.encode()));
  EXPECT_FALSE(resp.found);
}

TEST(NodeFaultTest, OriginRejectsCacheOnlyMessages) {
  Cluster cluster(tiny_config());
  net::MuxClient client(cluster.origin().port());
  LookupReq req;
  req.url = "/x";
  const Ack ack = Ack::decode(client.call(req.encode()));
  EXPECT_FALSE(ack.ok);
}

}  // namespace
}  // namespace cachecloud::node
