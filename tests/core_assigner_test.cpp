#include "core/assigner.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/url_hash.hpp"
#include "util/stats.hpp"

namespace cachecloud::core {
namespace {

std::vector<CacheId> ids(std::uint32_t n) {
  std::vector<CacheId> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

UrlHash doc_hash(int i) {
  return hash_url("/doc/" + std::to_string(i) + ".html");
}

TEST(UrlHashTest, RingAndIrhAreIndependentWords) {
  const UrlHash h = hash_url("/some/url");
  EXPECT_EQ(h.ring(4), h.ring_word % 4);
  EXPECT_EQ(h.irh(1000), h.irh_word % 1000);
  // Deterministic.
  const UrlHash again = hash_url("/some/url");
  EXPECT_EQ(h.ring_word, again.ring_word);
  EXPECT_EQ(h.irh_word, again.irh_word);
}

TEST(StaticAssignerTest, DeterministicAndSingleHop) {
  StaticHashAssigner assigner(ids(10));
  const UrlHash h = doc_hash(1);
  const BeaconTarget a = assigner.beacon_of(h);
  const BeaconTarget b = assigner.beacon_of(h);
  EXPECT_EQ(a.beacon, b.beacon);
  EXPECT_EQ(a.discovery_hops, 1u);
  EXPECT_LT(a.beacon, 10u);
}

TEST(StaticAssignerTest, SpreadsUrlsAcrossCaches) {
  StaticHashAssigner assigner(ids(10));
  std::map<CacheId, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[assigner.beacon_of(doc_hash(i)).beacon];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [cache, count] : counts) {
    EXPECT_NEAR(count, 1000, 250) << "cache " << cache;
  }
}

TEST(StaticAssignerTest, RemoveCacheRemaps) {
  StaticHashAssigner assigner(ids(3));
  assigner.remove_cache(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(assigner.beacon_of(doc_hash(i)).beacon, 1u);
  }
  EXPECT_THROW(assigner.remove_cache(99), std::invalid_argument);
}

TEST(ConsistentAssignerTest, LogNHopsAndDeterminism) {
  ConsistentHashAssigner assigner(ids(10), 16);
  const BeaconTarget t = assigner.beacon_of(doc_hash(5));
  EXPECT_EQ(t.discovery_hops, 4u);  // ceil(log2(10))
  EXPECT_EQ(assigner.beacon_of(doc_hash(5)).beacon, t.beacon);
  EXPECT_EQ(assigner.circle_size(), 160u);
}

TEST(ConsistentAssignerTest, UniformishDistribution) {
  ConsistentHashAssigner assigner(ids(10), 64);
  std::map<CacheId, double> counts;
  for (int i = 0; i < 20'000; ++i) {
    ++counts[assigner.beacon_of(doc_hash(i)).beacon];
  }
  std::vector<double> loads;
  for (const auto& [_, c] : counts) loads.push_back(c);
  const auto stats = util::summarize(loads);
  // Virtual nodes keep the URL spread reasonably even.
  EXPECT_LT(stats.coefficient_of_variation(), 0.35);
}

TEST(ConsistentAssignerTest, RemoveCacheOnlyMovesItsDocuments) {
  ConsistentHashAssigner assigner(ids(5), 32);
  std::map<int, CacheId> before;
  for (int i = 0; i < 2000; ++i) before[i] = assigner.beacon_of(doc_hash(i)).beacon;
  assigner.remove_cache(2);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const CacheId now = assigner.beacon_of(doc_hash(i)).beacon;
    EXPECT_NE(now, 2u);
    if (before[i] != 2 && now != before[i]) ++moved;
  }
  // Consistent hashing's defining property: documents of surviving caches
  // do not move.
  EXPECT_EQ(moved, 0);
}

TEST(DynamicAssignerTest, RingChunkingAndRemainder) {
  DynamicHashAssigner::Config config;
  config.ring_size = 2;
  DynamicHashAssigner even(ids(10), std::vector<double>(10, 1.0), config);
  EXPECT_EQ(even.num_rings(), 5u);

  // 7 caches with ring_size 3: last ring absorbs the single remainder.
  config.ring_size = 3;
  DynamicHashAssigner odd(ids(7), std::vector<double>(7, 1.0), config);
  EXPECT_EQ(odd.num_rings(), 2u);
  EXPECT_EQ(odd.ring(0).members().size(), 3u);
  EXPECT_EQ(odd.ring(1).members().size(), 4u);
}

TEST(DynamicAssignerTest, BeaconIsRingMember) {
  DynamicHashAssigner::Config config;
  config.ring_size = 2;
  DynamicHashAssigner assigner(ids(10), std::vector<double>(10, 1.0), config);
  for (int i = 0; i < 1000; ++i) {
    const UrlHash h = doc_hash(i);
    const CacheId beacon = assigner.beacon_of(h).beacon;
    const auto& members = assigner.ring(h.ring(5)).members();
    EXPECT_NE(std::find(members.begin(), members.end(), beacon),
              members.end());
    EXPECT_EQ(assigner.beacon_of(h).discovery_hops, 1u);
  }
}

TEST(DynamicAssignerTest, LoadFeedbackShiftsAssignment) {
  DynamicHashAssigner::Config config;
  config.ring_size = 2;
  config.irh_gen = 100;
  DynamicHashAssigner assigner(ids(2), std::vector<double>(2, 1.0), config);

  // Hammer the first beacon point's range only.
  for (int i = 0; i < 500; ++i) {
    const UrlHash h = doc_hash(i);
    if (assigner.beacon_of(h).beacon == 0) {
      assigner.record_load(h, 1.0);
    }
  }
  const auto moves = assigner.end_cycle();
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[0].to, 1u);
}

TEST(DynamicAssignerTest, RemoveCacheKeepsResolution) {
  DynamicHashAssigner::Config config;
  config.ring_size = 2;
  DynamicHashAssigner assigner(ids(4), std::vector<double>(4, 1.0), config);
  const auto moves = assigner.remove_cache(1);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 1u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(assigner.beacon_of(doc_hash(i)).beacon, 1u);
  }
  EXPECT_THROW(assigner.remove_cache(42), std::invalid_argument);
}

TEST(DynamicAssignerTest, RejectsBadConfig) {
  DynamicHashAssigner::Config config;
  config.ring_size = 0;
  EXPECT_THROW(
      DynamicHashAssigner(ids(4), std::vector<double>(4, 1.0), config),
      std::invalid_argument);
  config.ring_size = 2;
  EXPECT_THROW(
      DynamicHashAssigner(ids(4), std::vector<double>(3, 1.0), config),
      std::invalid_argument);
  EXPECT_THROW(DynamicHashAssigner({}, {}, config), std::invalid_argument);
}

}  // namespace
}  // namespace cachecloud::core
