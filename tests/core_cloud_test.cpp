#include "core/cloud.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/generators.hpp"

namespace cachecloud::core {
namespace {

trace::Trace small_trace() {
  trace::ZipfTraceConfig config;
  config.num_docs = 100;
  config.num_caches = 4;
  config.duration_sec = 60.0;
  config.requests_per_sec = 5.0;
  config.updates_per_minute = 10.0;
  config.seed = 5;
  return trace::generate_zipf_trace(config);
}

CloudConfig base_config() {
  CloudConfig config;
  config.num_caches = 4;
  config.hashing = CloudConfig::Hashing::Dynamic;
  config.ring_size = 2;
  config.placement = "adhoc";
  config.cycle_sec = 30.0;
  return config;
}

TEST(CacheCloudTest, FirstRequestMissesThenHitsLocally) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(base_config(), t);

  const RequestOutcome first = cloud.handle_request(0, 7, 1.0);
  EXPECT_EQ(first.kind, RequestKind::GroupMiss);
  EXPECT_TRUE(first.stored);  // ad hoc stores everywhere
  EXPECT_EQ(first.doc_bytes, t.doc(7).size_bytes);
  EXPECT_TRUE(cloud.directory().is_holder(7, 0));

  const RequestOutcome second = cloud.handle_request(0, 7, 2.0);
  EXPECT_EQ(second.kind, RequestKind::LocalHit);
  EXPECT_FALSE(second.stored);
}

TEST(CacheCloudTest, CloudHitFromAnotherCache) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(base_config(), t);

  cloud.handle_request(0, 7, 1.0);
  const RequestOutcome other = cloud.handle_request(1, 7, 2.0);
  EXPECT_EQ(other.kind, RequestKind::CloudHit);
  ASSERT_TRUE(other.source.has_value());
  EXPECT_EQ(*other.source, 0u);
  EXPECT_EQ(other.holders_seen, 1u);
  EXPECT_EQ(other.beacon, cloud.beacon_of_doc(7));
  EXPECT_TRUE(other.stored);
  EXPECT_EQ(cloud.directory().holder_count(7), 2u);
}

TEST(CacheCloudTest, UpdatePushesToAllHolders) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(base_config(), t);
  cloud.handle_request(0, 7, 1.0);
  cloud.handle_request(1, 7, 2.0);
  EXPECT_EQ(cloud.doc_version(7), 1u);

  const UpdateOutcome update = cloud.handle_update(7, 3.0);
  EXPECT_EQ(cloud.doc_version(7), 2u);
  EXPECT_EQ(update.holders.size(), 2u);
  EXPECT_EQ(update.beacon, cloud.beacon_of_doc(7));
  // Every copy in the cloud carries the new version.
  EXPECT_EQ(cloud.store(0).peek(7)->version, 2u);
  EXPECT_EQ(cloud.store(1).peek(7)->version, 2u);
}

TEST(CacheCloudTest, UpdateWithNoHoldersOnlyNotifiesBeacon) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(base_config(), t);
  const UpdateOutcome update = cloud.handle_update(3, 1.0);
  EXPECT_TRUE(update.holders.empty());
  EXPECT_EQ(cloud.doc_version(3), 2u);
}

TEST(CacheCloudTest, BeaconPlacementKeepsSingleCopyAtBeacon) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.placement = "beacon";
  CacheCloud cloud(config, t);

  const CacheId beacon = cloud.beacon_of_doc(7);
  const CacheId requester = beacon == 0 ? 1 : 0;
  const RequestOutcome miss = cloud.handle_request(requester, 7, 1.0);
  EXPECT_EQ(miss.kind, RequestKind::GroupMiss);
  EXPECT_FALSE(miss.stored);
  EXPECT_TRUE(miss.replicated_to_beacon);
  EXPECT_TRUE(cloud.store(beacon).contains(7));
  EXPECT_FALSE(cloud.store(requester).contains(7));
  EXPECT_EQ(cloud.directory().holder_count(7), 1u);

  // Next request anywhere else is a cloud hit served by the beacon.
  const CacheId third = 3 == beacon ? 2 : 3;
  const RequestOutcome hit = cloud.handle_request(third, 7, 2.0);
  EXPECT_EQ(hit.kind, RequestKind::CloudHit);
  EXPECT_EQ(*hit.source, beacon);
  EXPECT_FALSE(hit.stored);
}

TEST(CacheCloudTest, BeaconRequesterStoresWhenItIsTheBeacon) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.placement = "beacon";
  CacheCloud cloud(config, t);
  const CacheId beacon = cloud.beacon_of_doc(7);
  const RequestOutcome miss = cloud.handle_request(beacon, 7, 1.0);
  EXPECT_TRUE(miss.stored);
  EXPECT_FALSE(miss.replicated_to_beacon);
}

TEST(CacheCloudTest, UtilityPlacementRespondsToUpdatePressure) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.placement = "utility";
  config.utility.threshold = 0.5;
  CacheCloud cloud(config, t);

  // Document 7: accessed repeatedly at cache 0, never updated -> hot.
  for (int i = 0; i < 5; ++i) {
    cloud.handle_request(0, 7, 1.0 + i);
  }
  // After several accesses the utility is comfortably above threshold.
  const UtilityBreakdown hot = cloud.utility_of(0, 7, 6.0);
  EXPECT_GT(hot.cmc, 0.9);

  // Document 8: updated constantly, requested once -> low consistency value.
  for (int i = 0; i < 50; ++i) {
    cloud.handle_update(8, 1.0 + i * 0.1);
  }
  const UtilityBreakdown churny = cloud.utility_of(0, 8, 6.0);
  EXPECT_LT(churny.cmc, 0.1);
}

TEST(CacheCloudTest, EvictionDeregistersFromDirectory) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  // Tiny disk: every new doc evicts the previous one.
  config.per_cache_capacity_bytes = t.doc(0).size_bytes + 64;
  CacheCloud cloud(config, t);

  const RequestOutcome first = cloud.handle_request(0, 0, 1.0);
  if (!first.stored) GTEST_SKIP() << "doc 0 larger than the test disk";
  trace::DocId other = 1;
  while (other < 100 && t.doc(other).size_bytes > config.per_cache_capacity_bytes) {
    ++other;
  }
  const RequestOutcome second = cloud.handle_request(0, other, 2.0);
  if (second.stored && !second.evicted_at_requester.empty()) {
    EXPECT_FALSE(cloud.directory().is_holder(0, 0));
  }
}

TEST(CacheCloudTest, CycleRebalancesAndCountsRecordTransfers) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.cycle_sec = 10.0;
  CacheCloud cloud(config, t);

  // Load the cloud asymmetrically: every doc requested at every cache once,
  // so many docs have directory records.
  double now = 0.0;
  for (trace::DocId d = 0; d < 50; ++d) {
    for (CacheId c = 0; c < 4; ++c) {
      cloud.handle_request(c, d, now);
      now += 0.01;
    }
  }
  EXPECT_FALSE(cloud.maybe_end_cycle(5.0).has_value());
  const auto cycle = cloud.maybe_end_cycle(10.5);
  ASSERT_TRUE(cycle.has_value());
  // Skewed Zipf load: at least one ring should have shifted something.
  if (!cycle->moves.empty()) {
    EXPECT_GT(cycle->records_transferred, 0u);
  }
  // The next call is not due yet.
  EXPECT_FALSE(cloud.maybe_end_cycle(10.6).has_value());
}

TEST(CacheCloudTest, StaticHashingNeverRebalances) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.hashing = CloudConfig::Hashing::Static;
  config.cycle_sec = 1.0;
  CacheCloud cloud(config, t);
  for (int i = 0; i < 20; ++i) cloud.handle_request(0, i, 0.1 * i);
  const auto cycle = cloud.maybe_end_cycle(100.0);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(cycle->moves.empty());
  EXPECT_EQ(cycle->records_transferred, 0u);
}

TEST(CacheCloudTest, FailCacheReroutesAndPurges) {
  const trace::Trace t = small_trace();
  CacheCloud cloud(base_config(), t);
  cloud.handle_request(1, 7, 1.0);
  EXPECT_TRUE(cloud.directory().is_holder(7, 1));

  cloud.fail_cache(1);
  EXPECT_TRUE(cloud.is_failed(1));
  EXPECT_FALSE(cloud.directory().is_holder(7, 1));
  EXPECT_THROW(cloud.handle_request(1, 7, 2.0), std::invalid_argument);
  EXPECT_THROW(cloud.fail_cache(1), std::invalid_argument);

  // Other caches keep working, and no beacon resolves to the dead cache.
  for (trace::DocId d = 0; d < 50; ++d) {
    EXPECT_NE(cloud.beacon_of_doc(d), 1u);
    const RequestOutcome r = cloud.handle_request(0, d, 3.0 + d);
    EXPECT_NE(r.kind, RequestKind::CloudHit);  // holder 1 is gone
  }
}

TEST(CacheCloudTest, RejectsBadConfigAndIds) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.num_caches = 0;
  EXPECT_THROW(CacheCloud(config, t), std::invalid_argument);

  config = base_config();
  config.capabilities = {1.0, 1.0};  // wrong length
  EXPECT_THROW(CacheCloud(config, t), std::invalid_argument);

  CacheCloud cloud(base_config(), t);
  EXPECT_THROW(cloud.handle_request(99, 0, 0.0), std::out_of_range);
  EXPECT_THROW(cloud.handle_request(0, 9999, 0.0), std::out_of_range);
  EXPECT_THROW(cloud.handle_update(9999, 0.0), std::out_of_range);
}

// Invariant sweep across hashing schemes: the directory exactly mirrors the
// stores after an arbitrary workload.
class CloudSchemeSweep
    : public ::testing::TestWithParam<CloudConfig::Hashing> {};

TEST_P(CloudSchemeSweep, DirectoryMatchesStores) {
  const trace::Trace t = small_trace();
  CloudConfig config = base_config();
  config.hashing = GetParam();
  config.placement = "utility";
  config.per_cache_capacity_bytes = 200 * 1024;
  config.cycle_sec = 5.0;
  CacheCloud cloud(config, t);

  for (const trace::Event& e : t.events()) {
    cloud.maybe_end_cycle(e.time);
    if (e.type == trace::EventType::Request) {
      cloud.handle_request(e.cache, e.doc, e.time);
    } else {
      cloud.handle_update(e.doc, e.time);
    }
  }

  for (trace::DocId d = 0; d < 100; ++d) {
    for (CacheId c = 0; c < 4; ++c) {
      EXPECT_EQ(cloud.directory().is_holder(d, c), cloud.store(c).contains(d))
          << "doc " << d << " cache " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, CloudSchemeSweep,
                         ::testing::Values(CloudConfig::Hashing::Static,
                                           CloudConfig::Hashing::Consistent,
                                           CloudConfig::Hashing::Dynamic));

}  // namespace
}  // namespace cachecloud::core
