// Tests for flags, strings, rate estimation and hashing helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/rate.hpp"
#include "util/strings.hpp"

namespace cachecloud::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsAndSpaceForms) {
  const Flags flags = parse({"--alpha=0.9", "--count", "42", "--name=zipf"});
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 0.9);
  EXPECT_EQ(flags.get_int("count", 0), 42);
  EXPECT_EQ(flags.get_string("name", ""), "zipf");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
}

TEST(FlagsTest, Booleans) {
  const Flags flags = parse({"--verbose", "--no-color", "--cache=off"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("color", true));
  EXPECT_FALSE(flags.get_bool("cache", true));
  EXPECT_TRUE(flags.get_bool("other", true));
}

TEST(FlagsTest, PositionalAndSeparator) {
  const Flags flags = parse({"input.txt", "--x=1", "--", "--not-a-flag"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "--not-a-flag");
  EXPECT_EQ(flags.get_int("x", 0), 1);
}

TEST(FlagsTest, TypeErrors) {
  const Flags flags = parse({"--n=abc", "--f=1.2.3", "--b=maybe"});
  EXPECT_THROW((void)flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_double("f", 0.0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_bool("b", false), std::invalid_argument);
}

TEST(FlagsTest, NegativeAndFloatValuesParseUniformly) {
  // Space and equals spellings must accept the same numeric grammar,
  // including negatives and scientific notation (--rate / --ramp-step).
  const Flags flags = parse({"--rate", "-250", "--ramp-step=-0.5", "--burst",
                             "-1.5e2", "--count=2e3", "--exact=2000.0"});
  EXPECT_EQ(flags.get_int("rate", 0), -250);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), -250.0);
  EXPECT_DOUBLE_EQ(flags.get_double("ramp-step", 0.0), -0.5);
  EXPECT_DOUBLE_EQ(flags.get_double("burst", 0.0), -150.0);
  EXPECT_EQ(flags.get_int("count", 0), 2000);
  EXPECT_EQ(flags.get_int("exact", 0), 2000);
}

TEST(FlagsTest, GetIntStillRejectsNonIntegralValues) {
  const Flags flags = parse({"--rate=2.5", "--big=1e300"});
  EXPECT_THROW((void)flags.get_int("rate", 0), std::invalid_argument);
  EXPECT_THROW((void)flags.get_int("big", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(FlagsTest, DuplicateFlagsAreRejectedAtParseTime) {
  // A repeated flag is a script bug; the last spelling must never win
  // silently, whatever mix of spellings repeats it.
  EXPECT_THROW(parse({"--x", "1", "--x=2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--x=1", "--x=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--color", "--no-color"}), std::invalid_argument);
  EXPECT_THROW(parse({"--no-v", "--v=true"}), std::invalid_argument);
  try {
    parse({"--rate=1", "--rate=2"});
    FAIL() << "duplicate --rate accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--rate"), std::string::npos);
  }
  // Distinct names, and flag-like positionals after "--", stay fine.
  const Flags flags = parse({"--x=1", "--y=1", "--", "--x=2"});
  EXPECT_EQ(flags.get_int("x", 0), 1);
  ASSERT_EQ(flags.positional().size(), 1u);
}

TEST(FlagsTest, UnusedDetection) {
  const Flags flags = parse({"--used=1", "--typo=2"});
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3 * 1024ull * 1024), "3.0 MiB");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("/sydney/doc1", "/sydney/"));
  EXPECT_FALSE(starts_with("/x", "/sydney/"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(HashTest, Mix64AndFnv) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(RateEstimatorTest, SteadyStreamConvergesToRate) {
  RateEstimator estimator(10.0);  // 10 s half-life
  // 5 events per second for 60 seconds.
  for (int i = 0; i < 300; ++i) {
    estimator.record(static_cast<double>(i) * 0.2);
  }
  EXPECT_NEAR(estimator.rate(60.0), 5.0, 0.5);
}

TEST(RateEstimatorTest, DecaysAfterSilence) {
  RateEstimator estimator(10.0);
  for (int i = 0; i < 100; ++i) estimator.record(i * 0.1);
  const double active = estimator.rate(10.0);
  const double after_one_half_life = estimator.rate(20.0);
  const double much_later = estimator.rate(100.0);
  EXPECT_NEAR(after_one_half_life, active / 2.0, active * 0.05);
  EXPECT_LT(much_later, active * 0.01);
}

TEST(RateEstimatorTest, FreshEstimatorIsZero) {
  const RateEstimator estimator(60.0);
  EXPECT_DOUBLE_EQ(estimator.rate(100.0), 0.0);
}

TEST(RateEstimatorTest, WeightedEvents) {
  RateEstimator unit(30.0);
  RateEstimator weighted(30.0);
  for (int i = 0; i < 10; ++i) {
    unit.record(i * 1.0);
    unit.record(i * 1.0);
    weighted.record(i * 1.0, 2.0);
  }
  EXPECT_NEAR(unit.rate(10.0), weighted.rate(10.0), 1e-9);
}

TEST(RateEstimatorTest, ResetClears) {
  RateEstimator estimator(10.0);
  estimator.record(1.0);
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.rate(2.0), 0.0);
}

}  // namespace
}  // namespace cachecloud::util
